//! The invariant checkers: run one [`CheckCase`] under many schedules and
//! assert every run is bitwise identical, plus the differential oracle
//! against the dense direct solver and across configurations.

use crate::config::{CheckCase, ScalarKind};
use crate::policy::{MemberOrder, RecordingSchedule, SeededSchedule, SystematicSchedule};
use crate::replay::Witness;
use crate::shrink::{shrink, ShrinkBudget};
use chase_comm::{kind_to_json, run_grid, Ledger, SchedulePolicy};
use chase_core::{try_solve_dist, ChaseError, ChaseResult, DistHerm};
use chase_device::Backend;
use chase_linalg::{Matrix, RealScalar, Scalar, C64};
use chase_matgen::{dense_with_spectrum, Spectrum};
use chase_perfmodel::Machine;
use chase_trace::{chrome_trace, RankTrace, Trace, TraceRecorder};
use chase_tune::{plan_from_entry, tune_entry, MeasuredHook, TuneOptions};
use std::sync::Arc;

/// FNV-1a over a byte stream; the crate's one content hash.
fn fnv(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Everything observable about one rank of one run, reduced to exactly
/// the fields the schedule-independence invariant promises are stable:
/// bit patterns and deterministic counters, never wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFp {
    /// `Some(error display)` when the solve failed on this rank.
    pub err: Option<String>,
    /// Eigenvalue bit patterns (ascending order, `f64` bits).
    pub eigs: Vec<u64>,
    /// Residual-norm bit patterns.
    pub residuals: Vec<u64>,
    /// FNV hash over the local eigenvector block's element bits.
    pub vec_hash: u64,
    pub iterations: usize,
    pub matvecs: u64,
    pub lowprec_matvecs: u64,
    pub converged: bool,
    /// Sorted multiset projection of the rank's ledger: `(kind, region,
    /// window, lo)` per event, excluding the wall-clock span fields
    /// (`t0_us`/`t1_us` legitimately differ across schedules).
    pub ledger: Vec<String>,
}

/// The run-level identity a schedule must not perturb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Per-rank fingerprints in world-rank order.
    pub ranks: Vec<RankFp>,
    /// FNV hash of the stitched chrome-trace export (deterministic bytes:
    /// the trace model carries no wall-clock data).
    pub trace_hash: u64,
}

impl Fingerprint {
    /// First field where `self` and `other` diverge, as a diagnostic
    /// sentence; `None` when identical.
    pub fn first_divergence(&self, other: &Fingerprint) -> Option<String> {
        if self.ranks.len() != other.ranks.len() {
            return Some(format!(
                "rank count {} vs {}",
                self.ranks.len(),
                other.ranks.len()
            ));
        }
        for (r, (a, b)) in self.ranks.iter().zip(&other.ranks).enumerate() {
            if a.err != b.err {
                return Some(format!("rank {r}: outcome {:?} vs {:?}", a.err, b.err));
            }
            if a.eigs != b.eigs {
                let i = a.eigs.iter().zip(&b.eigs).position(|(x, y)| x != y);
                return Some(format!(
                    "rank {r}: eigenvalue bits differ (first at index {:?}: {:?} vs {:?})",
                    i,
                    i.map(|i| f64::from_bits(a.eigs[i])),
                    i.map(|i| f64::from_bits(b.eigs[i])),
                ));
            }
            if a.residuals != b.residuals {
                return Some(format!("rank {r}: residual bits differ"));
            }
            if a.vec_hash != b.vec_hash {
                return Some(format!(
                    "rank {r}: eigenvector hash {:#x} vs {:#x}",
                    a.vec_hash, b.vec_hash
                ));
            }
            if (a.iterations, a.matvecs, a.lowprec_matvecs, a.converged)
                != (b.iterations, b.matvecs, b.lowprec_matvecs, b.converged)
            {
                return Some(format!(
                    "rank {r}: counters (it={},mv={},lo={},conv={}) vs (it={},mv={},lo={},conv={})",
                    a.iterations,
                    a.matvecs,
                    a.lowprec_matvecs,
                    a.converged,
                    b.iterations,
                    b.matvecs,
                    b.lowprec_matvecs,
                    b.converged
                ));
            }
            if a.ledger != b.ledger {
                let i = a
                    .ledger
                    .iter()
                    .zip(&b.ledger)
                    .position(|(x, y)| x != y)
                    .unwrap_or(a.ledger.len().min(b.ledger.len()));
                return Some(format!(
                    "rank {r}: ledger projection differs at entry {i} ({:?} vs {:?})",
                    a.ledger.get(i),
                    b.ledger.get(i)
                ));
            }
        }
        if self.trace_hash != other.trace_hash {
            return Some(format!(
                "trace bytes differ ({:#x} vs {:#x})",
                self.trace_hash, other.trace_hash
            ));
        }
        None
    }

    /// Rank 0's eigenvalues as `f64`s (the oracle comparison payload).
    pub fn eigenvalues(&self) -> Vec<f64> {
        self.ranks
            .first()
            .map(|r| r.eigs.iter().map(|&b| f64::from_bits(b)).collect())
            .unwrap_or_default()
    }
}

fn real_bits<R: RealScalar>(r: R) -> u64 {
    r.to_f64().to_bits()
}

fn rank_fp<T: Scalar>(result: Result<ChaseResult<T>, ChaseError>, ledger: &Ledger) -> RankFp {
    let mut ledger_proj: Vec<String> = ledger
        .events()
        .iter()
        .map(|e| {
            format!(
                "{}|{:?}|{:?}|{}",
                kind_to_json(&e.kind),
                e.region,
                e.window,
                e.lo
            )
        })
        .collect();
    ledger_proj.sort_unstable();
    match result {
        Ok(r) => RankFp {
            err: None,
            eigs: r.eigenvalues.iter().map(|&x| real_bits(x)).collect(),
            residuals: r.residuals.iter().map(|&x| real_bits(x)).collect(),
            vec_hash: fnv(r.eigenvectors_local.as_slice().iter().flat_map(|&v| {
                real_bits(v.re())
                    .to_le_bytes()
                    .into_iter()
                    .chain(real_bits(v.im()).to_le_bytes())
            })),
            iterations: r.iterations,
            matvecs: r.matvecs,
            lowprec_matvecs: r.lowprec_matvecs,
            converged: r.converged,
            ledger: ledger_proj,
        },
        Err(e) => RankFp {
            err: Some(e.to_string()),
            eigs: Vec::new(),
            residuals: Vec::new(),
            vec_hash: 0,
            iterations: 0,
            matvecs: 0,
            lowprec_matvecs: 0,
            converged: false,
            ledger: ledger_proj,
        },
    }
}

fn run_case_t<T>(
    case: &CheckCase,
    policy: Option<Arc<dyn SchedulePolicy>>,
    canary: bool,
) -> Fingerprint
where
    T: Scalar + chase_comm::Reduce,
    T::Real: chase_comm::Reduce,
    T::Lo: chase_comm::Reduce,
{
    let spec = Spectrum::uniform(case.n, -1.0, 1.0);
    let h: Matrix<T> = dense_with_spectrum(&spec, case.pseed);
    let params = case.params();
    let out = run_grid(case.shape(), |ctx| {
        // Install the seam before the first collective (the bounds
        // estimate) so the entire solve is gated, and the canary so the
        // planted bug covers blocking, nonblocking and hop folds alike.
        ctx.set_schedule_policy(policy.clone());
        ctx.set_order_sensitive_fold(canary);
        let rec = Arc::new(TraceRecorder::new(ctx.world_rank()));
        ctx.set_trace_hook(Some(rec.clone()));
        let mut params = params.clone();
        let mut dh = DistHerm::from_global(&h, ctx);
        if case.plan {
            let opts = TuneOptions {
                deterministic: true,
                machine: Machine::juwels_booster(),
                backend: Backend::Nccl,
            };
            let t = tune_entry(ctx, &mut dh, params.nev, params.nex, &opts);
            params.apply_plan(&plan_from_entry(&t.entry));
            ctx.set_tune_hook(Some(Arc::new(MeasuredHook::new(t.entry))));
        }
        let result = try_solve_dist(ctx, Backend::Nccl, dh, &params, None);
        ctx.set_tune_hook(None);
        ctx.set_trace_hook(None);
        ctx.set_order_sensitive_fold(false);
        ctx.set_schedule_policy(None);
        (result, rec.finish())
    });
    let mut ranks = Vec::new();
    let mut traces: Vec<RankTrace> = Vec::new();
    for ((result, trace), ledger) in out.results.into_iter().zip(&out.ledgers) {
        ranks.push(rank_fp(result, ledger));
        traces.push(trace);
    }
    let trace_hash = fnv(chrome_trace(&Trace { ranks: traces }).into_bytes());
    Fingerprint { ranks, trace_hash }
}

/// Run `case` once under `policy` (`None` = free-running) with the
/// mutation canary armed or not, and fingerprint the run.
pub fn run_case(
    case: &CheckCase,
    policy: Option<Arc<dyn SchedulePolicy>>,
    canary: bool,
) -> Fingerprint {
    match case.scalar {
        ScalarKind::F64 => run_case_t::<f64>(case, policy, canary),
        ScalarKind::C64 | ScalarKind::C64Mixed => run_case_t::<C64>(case, policy, canary),
    }
}

/// A schedule under which `case` diverged from its reference run, shrunk
/// to a minimal reproducer.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Fuzzer seed that first exposed the divergence (`None` when the
    /// systematic sweep or the gate-transparency baseline found it).
    pub seed: Option<u64>,
    /// Minimal replayable schedule.
    pub witness: Witness,
    /// First-divergence diagnostic of the *original* (unshrunk) failure.
    pub diff: String,
    /// Re-runs the shrinker spent minimizing.
    pub shrink_runs: usize,
}

/// Outcome of exploring one case.
#[derive(Debug, Clone)]
pub struct CheckReport {
    pub case: CheckCase,
    /// Schedules executed (reference + baseline + systematic + seeded).
    pub schedules: usize,
    pub violation: Option<Violation>,
}

impl CheckReport {
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Explore `case` under `seeds` (plus the identity baseline and, when
/// `systematic`, the bounded constant-permutation sweep), stopping at the
/// first violation and shrinking it to a minimal witness.
///
/// With `canary` the communicators' order-sensitive fold is armed, so a
/// violation is *expected*: the reference schedule is then the identity
/// gate (free-running canary runs are racy by construction).
pub fn check_case(case: &CheckCase, seeds: &[u64], systematic: bool, canary: bool) -> CheckReport {
    let mut schedules = 1;
    let reference = if canary {
        run_case(case, Some(Arc::new(MemberOrder)), true)
    } else {
        run_case(case, None, false)
    };

    let fail = |seed: Option<u64>, diff: String, recorded, schedules: usize| -> CheckReport {
        let (witness, shrink_runs) =
            shrink(case, canary, &reference, recorded, ShrinkBudget::default());
        CheckReport {
            case: case.clone(),
            schedules,
            violation: Some(Violation {
                seed,
                witness,
                diff,
                shrink_runs,
            }),
        }
    };

    if !canary {
        // Gate transparency: forcing the order the engine already uses
        // must not change one bit. If it does, the harness itself (or the
        // gating seam) is wrong, and no further exploration is trustworthy.
        let rec = Arc::new(RecordingSchedule::new(MemberOrder));
        let gated = run_case(case, Some(rec.clone() as Arc<dyn SchedulePolicy>), false);
        schedules += 1;
        if let Some(diff) = reference.first_divergence(&gated) {
            return fail(
                None,
                format!("identity gating changed the run: {diff}"),
                rec.recorded(),
                schedules,
            );
        }
    }

    if systematic {
        let world = case.shape().ranks();
        for k in 1..SystematicSchedule::space(world).min(24) {
            let rec = Arc::new(RecordingSchedule::new(SystematicSchedule::new(k)));
            let fp = run_case(case, Some(rec.clone() as Arc<dyn SchedulePolicy>), canary);
            schedules += 1;
            if let Some(diff) = reference.first_divergence(&fp) {
                return fail(
                    None,
                    format!("systematic schedule {k}: {diff}"),
                    rec.recorded(),
                    schedules,
                );
            }
        }
    }

    for &seed in seeds {
        let rec = Arc::new(RecordingSchedule::new(SeededSchedule::new(seed)));
        let fp = run_case(case, Some(rec.clone() as Arc<dyn SchedulePolicy>), canary);
        schedules += 1;
        if let Some(diff) = reference.first_divergence(&fp) {
            return fail(
                Some(seed),
                format!("seed {seed}: {diff}"),
                rec.recorded(),
                schedules,
            );
        }
    }

    CheckReport {
        case: case.clone(),
        schedules,
        violation: None,
    }
}

fn direct_eigs<T: Scalar>(case: &CheckCase) -> Vec<f64> {
    let spec = Spectrum::uniform(case.n, -1.0, 1.0);
    let h: Matrix<T> = dense_with_spectrum(&spec, case.pseed);
    let direct = chase_direct::eigh_partial(&h, case.nev, false);
    direct
        .eigenvalues
        .iter()
        .take(case.nev)
        .map(|&x| real_bits(x))
        .map(f64::from_bits)
        .collect()
}

/// Differential oracle, leg 1: the distributed iterative solve of `case`
/// must agree with the dense direct solver on every wanted eigenvalue to
/// within the residual tolerance (for a Hermitian matrix the eigenvalue
/// error is bounded by the residual norm).
pub fn differential_check(case: &CheckCase) -> Result<(), String> {
    let fp = run_case(case, None, false);
    if let Some(r) = fp.ranks.iter().find(|r| r.err.is_some()) {
        return Err(format!("case {case}: solve failed: {:?}", r.err));
    }
    let eigs = fp.eigenvalues();
    let direct = match case.scalar {
        ScalarKind::F64 => direct_eigs::<f64>(case),
        ScalarKind::C64 | ScalarKind::C64Mixed => direct_eigs::<C64>(case),
    };
    let bound = 100.0 * case.tol;
    for (i, (a, b)) in eigs.iter().zip(&direct).enumerate() {
        if (a - b).abs() > bound {
            return Err(format!(
                "case {case}: eigenvalue {i} diverges from direct solve: {a} vs {b} (|Δ|={:.3e} > {bound:.3e})",
                (a - b).abs()
            ));
        }
    }
    Ok(())
}

/// Differential oracle, leg 2: cross-configuration agreement for one
/// scalar. Same-grid re-configurations (overlap pipeline, tuned plan) are
/// documented bitwise-identical; different grids change the reduction
/// partition, so they agree numerically instead.
pub fn cross_config_check(scalar: ScalarKind) -> Result<(), String> {
    let base_case = CheckCase::new(scalar, (2, 2), false);
    let base = run_case(&base_case, None, false);
    let base_eigs = &base.ranks[0].eigs;

    for variant in [
        CheckCase::new(scalar, (2, 2), true),
        CheckCase::new(scalar, (2, 2), false).with_plan(true),
    ] {
        let fp = run_case(&variant, None, false);
        if &fp.ranks[0].eigs != base_eigs {
            return Err(format!(
                "case {variant}: eigenvalue bits differ from same-grid baseline {base_case}"
            ));
        }
    }

    for grid in [(1, 1), (1, 4)] {
        let variant = CheckCase::new(scalar, grid, false);
        let fp = run_case(&variant, None, false);
        for (i, (a, b)) in fp.eigenvalues().iter().zip(base.eigenvalues()).enumerate() {
            if (a - b).abs() > 100.0 * base_case.tol {
                return Err(format!(
                    "case {variant}: eigenvalue {i} diverges from {base_case}: {a} vs {b}"
                ));
            }
        }
    }

    if scalar == ScalarKind::C64Mixed {
        let full = run_case(&CheckCase::new(ScalarKind::C64, (2, 2), false), None, false);
        for (i, (a, b)) in base
            .eigenvalues()
            .iter()
            .zip(full.eigenvalues())
            .enumerate()
        {
            if (a - b).abs() > 100.0 * base_case.tol {
                return Err(format!(
                    "mixed-precision eigenvalue {i} diverges from full precision: {a} vs {b}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_reproducible() {
        let case = CheckCase::new(ScalarKind::F64, (1, 2), false);
        let a = run_case(&case, None, false);
        let b = run_case(&case, None, false);
        assert_eq!(a.first_divergence(&b), None);
        assert!(a.ranks.iter().all(|r| r.err.is_none() && r.converged));
    }

    #[test]
    fn identity_gating_is_transparent_on_a_flat_grid() {
        let case = CheckCase::new(ScalarKind::F64, (1, 2), true);
        let free = run_case(&case, None, false);
        let gated = run_case(&case, Some(Arc::new(MemberOrder)), false);
        assert_eq!(free.first_divergence(&gated), None);
    }

    #[test]
    fn divergence_diagnostics_name_the_field() {
        let case = CheckCase::new(ScalarKind::F64, (1, 2), false);
        let a = run_case(&case, None, false);
        let mut b = a.clone();
        b.ranks[1].eigs[0] ^= 1;
        let diff = a.first_divergence(&b).unwrap();
        assert!(diff.contains("rank 1"), "{diff}");
        assert!(diff.contains("eigenvalue"), "{diff}");
        b = a.clone();
        b.trace_hash ^= 1;
        assert!(a.first_divergence(&b).unwrap().contains("trace"));
    }
}
