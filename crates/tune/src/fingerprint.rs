//! Machine fingerprinting: a stable identity for the calibration a plan
//! was measured under. A plan tuned for one machine is meaningless on
//! another — JUWELS-Booster's NVLink/IB ratio decides the ring-vs-tree
//! crossover — so the DB key starts with a hash of every constant the cost
//! model (and thus the deterministic trial clock) depends on.

use crate::db::fnv1a;
use chase_perfmodel::Machine;

/// Stable fingerprint of a machine model: `m-` plus 16 hex digits of an
/// FNV-1a hash over the exact bit patterns of the calibration constants and
/// the topology parameters. Changing any constant — even in the last ulp —
/// changes the fingerprint, which is exactly the invalidation rule the
/// deterministic trial clock needs.
pub fn machine_fingerprint(machine: &Machine) -> String {
    let mut bytes = Vec::with_capacity(256);
    for x in [
        machine.gemm_rate,
        machine.level3_rate,
        machine.potrf_rate,
        machine.heevd_rate,
        machine.hhqr_rate,
        machine.hhqr_panel_sync,
        machine.hbm_bw,
        machine.launch_overhead,
        machine.pcie_bw,
        machine.pcie_latency,
        machine.mpi_bw,
        machine.mpi_latency,
        machine.nccl_bw,
        machine.nccl_latency,
    ] {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    // The topology's link parameters feed the per-hop trial pricing; its
    // Debug rendering is a deterministic function of the field values.
    bytes.extend_from_slice(format!("{:?}", machine.topo).as_bytes());
    format!("m-{:016x}", fnv1a(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = machine_fingerprint(&Machine::juwels_booster());
        let b = machine_fingerprint(&Machine::juwels_booster());
        assert_eq!(a, b);
        let mut m = Machine::juwels_booster();
        m.nccl_bw *= 1.0 + 1e-15;
        assert_ne!(a, machine_fingerprint(&m));
    }
}
