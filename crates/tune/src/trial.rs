//! Deterministic micro-benchmark trials probing the solver's hot paths.
//!
//! Each trial *executes* the real code path — a `chase-topo` hop schedule
//! over the real communicators, the pipelined HEMM over the caller's actual
//! `H` block, the demoted filter — and scores it on one of two clocks:
//!
//! * **deterministic** — the events the path recorded are priced with the
//!   `chase-perfmodel` machine (per-hop for collectives, overlap-aware for
//!   pipelined filter steps). Trials replay bitwise, so tests and the
//!   serve scheduler's plan phase stay reproducible.
//! * **wall-clock** — `std::time::Instant` around the same execution, for
//!   tuning on a live machine.
//!
//! Either way, every candidate's score is world-agreed (summed over ranks
//! with one scalar allreduce) *before* any rank compares candidates, so
//! all ranks pick the same winner; the finished entry's content hash is
//! broadcast and checked as a belt-and-braces assertion. The flat
//! reference path is always among the candidates, which is what guarantees
//! a tuned plan is never worse than `Flat` under the trial metric.
//!
//! Every trial is wrapped in a `tune` trace span — a solve that resolves
//! its plan from a warm DB runs zero trials, witnessed by a trace with
//! zero `tune` spans.

use crate::db::{CollRule, PlanEntry, PlanKey};
use crate::fingerprint::machine_fingerprint;
use chase_comm::{Communicator, EventKind, RankCtx, Reduce, TuneAlgo, TuneOp};
use chase_core::{
    chebyshev_filter_mixed, chebyshev_filter_with, DistHerm, FilterBounds, FilterExec,
};
use chase_device::{Backend, CollectiveAlgo, Device};
use chase_linalg::{Matrix, RealScalar, Scalar};
use chase_perfmodel::{
    price_events_overlap, CommFlavor, Machine, PriceCtx, ResidualRow, ScalarKind,
};
use chase_topo::{collective_cost, exec, Algo, CollOp, CHUNK_MENU, PANEL_MENU};
use std::time::Instant;

/// Degree of the trial filter: the smallest even degree that exercises both
/// recurrence directions (C→B and B→C) and their collectives.
const TRIAL_DEG: usize = 2;

/// Base collective-wait watchdog during trials, before the
/// `CHASE_TEST_TIMEOUT_SCALE` multiplier. Tighter than the production
/// default: a single micro-benchmark trial finishing slower than this is a
/// wedge, not a measurement.
const TRIAL_WATCHDOG_MS: u64 = 10_000;

/// How trials are clocked and priced.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Deterministic perf-model clock (bitwise-replayable) vs wall clock.
    pub deterministic: bool,
    /// Machine model: prices deterministic trials and fingerprints the DB
    /// key either way.
    pub machine: Machine,
    /// Backend whose transport the trials mimic (decides host staging).
    pub backend: Backend,
}

impl TuneOptions {
    /// Deterministic trials on the paper's machine model (the mode tests
    /// and the serve scheduler use).
    pub fn deterministic() -> Self {
        Self {
            deterministic: true,
            machine: Machine::juwels_booster(),
            backend: Backend::Nccl,
        }
    }

    /// Wall-clock trials (live tuning).
    pub fn wall_clock() -> Self {
        Self {
            deterministic: false,
            ..Self::deterministic()
        }
    }

    /// The comm flavor this backend prices at (host-staged vs
    /// device-direct alpha-beta rows).
    pub fn flavor(&self) -> CommFlavor {
        if self.backend.stages_through_host() {
            CommFlavor::MpiHostStaged
        } else {
            CommFlavor::NcclDeviceDirect
        }
    }
}

/// A finished tuning run: the DB entry plus the modeled-vs-measured
/// residuals of every hop-schedule candidate (the `chase-perfmodel`
/// calibration report).
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    pub entry: PlanEntry,
    pub residuals: Vec<ResidualRow>,
}

/// The `ScalarKind` the perf model prices `T` as.
pub fn scalar_kind<T: Scalar>() -> ScalarKind {
    match (std::mem::size_of::<T>(), T::IS_COMPLEX) {
        (4, false) => ScalarKind::F32,
        (8, true) => ScalarKind::C32,
        (16, true) => ScalarKind::C64,
        _ => ScalarKind::F64,
    }
}

/// Canonical lowercase scalar name for DB keys.
pub fn scalar_name<T: Scalar>() -> &'static str {
    match scalar_kind::<T>() {
        ScalarKind::F32 => "f32",
        ScalarKind::F64 => "f64",
        ScalarKind::C32 => "c32",
        ScalarKind::C64 => "c64",
    }
}

/// The DB key for a solve of `h`-like dimensions on this grid and machine.
pub fn plan_key<T: Scalar>(
    machine: &Machine,
    p: usize,
    q: usize,
    n: usize,
    nev: usize,
    nex: usize,
) -> PlanKey {
    PlanKey {
        machine: machine_fingerprint(machine),
        p,
        q,
        n,
        nev,
        nex,
        scalar: scalar_name::<T>().to_string(),
    }
}

/// Mutable trial bookkeeping shared by the probe passes.
struct Bench<'a> {
    ctx: &'a RankCtx,
    opts: &'a TuneOptions,
    trial_idx: u64,
    residuals: Vec<ResidualRow>,
}

impl<'a> Bench<'a> {
    /// World-agree a locally measured score: the sum over ranks is the
    /// shared metric every rank minimizes.
    fn agree(&self, local: f64) -> f64 {
        self.ctx.world.allreduce_scalar(local) / self.ctx.world.size() as f64
    }

    /// Run one candidate under a `tune` span and return its agreed score.
    fn run(&mut self, body: impl FnOnce(&mut f64)) -> f64 {
        self.ctx.trace_span_begin("tune", self.trial_idx);
        self.trial_idx += 1;
        let mut local = 0.0;
        if self.opts.deterministic {
            body(&mut local);
        } else {
            let t0 = Instant::now();
            body(&mut local);
            local = t0.elapsed().as_secs_f64();
        }
        self.ctx.trace_span_end("tune");
        self.agree(local)
    }
}

/// Chunk candidates for a message of `bytes`: every menu chunk that
/// actually splits it, plus one unsplit candidate. (A chunk at or above the
/// message size degenerates to "unsplit", so larger menu entries would be
/// duplicate trials.)
fn chunk_candidates(bytes: u64) -> Vec<u64> {
    let mut chunks: Vec<u64> = CHUNK_MENU.iter().copied().filter(|&c| c < bytes).collect();
    chunks.push(bytes.max(1));
    chunks
}

/// Measure every (algorithm, chunk) candidate — flat first — for one
/// collective probe and append the winning rule.
#[allow(clippy::too_many_arguments)]
fn probe_collective<T: Scalar + Reduce>(
    bench: &mut Bench<'_>,
    comm: &Communicator,
    op: CollOp,
    bytes: u64,
    rules: &mut Vec<CollRule>,
    tuned_sum: &mut f64,
    flat_sum: &mut f64,
) {
    let tune_op = match op {
        CollOp::AllReduce => TuneOp::AllReduce,
        CollOp::Bcast => TuneOp::Bcast,
        CollOp::AllGather => TuneOp::AllGather,
    };
    let members = comm.size();
    if rules
        .iter()
        .any(|r| r.op == tune_op && r.members == members && r.max_bytes == bytes)
    {
        return; // identical probe already measured
    }
    let es = std::mem::size_of::<T>() as u64;
    let len = ((bytes / es) as usize).max(1);
    let flavor = bench.opts.flavor();
    let machine = bench.opts.machine.clone();
    let topo = machine.topo.clone();

    // Flat reference candidate.
    let flat_cost = bench.run(|local| {
        let mut buf = vec![T::one(); len];
        match op {
            CollOp::AllReduce => comm.allreduce_sum(&mut buf),
            CollOp::Bcast => comm.bcast(&mut buf, 0),
            CollOp::AllGather => {
                let per = (len / members).max(1);
                let _ = comm.allgather(&buf[..per]);
            }
        }
        let kind = match op {
            CollOp::AllReduce => EventKind::AllReduce {
                bytes,
                members: members as u64,
            },
            CollOp::Bcast => EventKind::Bcast {
                bytes,
                members: members as u64,
            },
            CollOp::AllGather => EventKind::AllGather {
                bytes_per_rank: bytes / members.max(1) as u64,
                members: members as u64,
            },
        };
        *local = machine.comm_time(&kind, flavor);
    });

    let mut best = CollRule {
        op: tune_op,
        members,
        max_bytes: bytes,
        algo: TuneAlgo::Flat,
        chunk_bytes: 0,
        measured: flat_cost,
        modeled: flat_cost,
    };

    for algo in Algo::ALL {
        for chunk in chunk_candidates(bytes) {
            let cost = bench.run(|local| {
                let mut hop = |b: u64, link| {
                    *local += machine.comm_time(&EventKind::P2p { bytes: b, link }, flavor);
                };
                match op {
                    CollOp::AllReduce => {
                        let mut buf = vec![T::one(); len];
                        exec::allreduce(comm, &topo, &mut buf, algo, chunk, &mut hop);
                    }
                    CollOp::Bcast => {
                        let mut buf = vec![T::one(); len];
                        exec::bcast(comm, &topo, &mut buf, 0, algo, chunk, &mut hop);
                    }
                    CollOp::AllGather => {
                        let per = (len / members).max(1);
                        let buf = vec![T::one(); per];
                        let _ = exec::allgather(comm, &topo, &buf, algo, chunk, &mut hop);
                    }
                }
            });
            let modeled = collective_cost(
                &topo,
                comm.labels(),
                !bench.opts.backend.stages_through_host(),
                op,
                algo,
                bytes,
                chunk,
            );
            bench.residuals.push(ResidualRow {
                label: format!(
                    "{} {}B x{} {}/{}",
                    tune_op.name(),
                    bytes,
                    members,
                    algo.name(),
                    chunk
                ),
                modeled,
                measured: cost,
            });
            if cost < best.measured {
                best = CollRule {
                    op: tune_op,
                    members,
                    max_bytes: bytes,
                    algo: match algo {
                        Algo::Ring => TuneAlgo::Ring,
                        Algo::Tree => TuneAlgo::Tree,
                        Algo::Doubling => TuneAlgo::Doubling,
                    },
                    chunk_bytes: chunk,
                    measured: cost,
                    modeled,
                };
            }
        }
    }
    *tuned_sum += best.measured;
    *flat_sum += flat_cost;
    rules.push(best);
}

/// Tune a full entry for the solve configuration `(h, nev, nex)` on this
/// grid. Collective work runs on the actual row/column communicators,
/// filter work on the caller's actual `H` block (its prepack caches warm
/// up; the numeric content of the solve is untouched — trials use private
/// vector blocks). Must be called SPMD by every rank of the grid.
pub fn tune_entry<T>(
    ctx: &RankCtx,
    h: &mut DistHerm<T>,
    nev: usize,
    nex: usize,
    opts: &TuneOptions,
) -> TuneOutcome
where
    T: Scalar + Reduce,
    T::Real: Reduce,
    T::Lo: Reduce,
{
    let ne = nev + nex;
    assert!(ne >= 1 && ne <= h.n, "trial subspace must fit the problem");
    // Trial watchdog: a wedged candidate must fail the tune with a typed
    // timeout, not hang it. Routed through `CHASE_TEST_TIMEOUT_SCALE`
    // (`chase_comm::scaled_timeout_ms`) like every other timeout-bearing
    // path, so oversubscribed CI keeps a real margin.
    let watchdog = chase_comm::scaled_timeout_ms(TRIAL_WATCHDOG_MS);
    let comms = [&ctx.world, &ctx.row_comm, &ctx.col_comm];
    let prior_timeouts: Vec<u64> = comms.iter().map(|c| c.wait_timeout_ms()).collect();
    for c in comms {
        c.set_wait_timeout_ms(watchdog);
    }
    let es = std::mem::size_of::<T>() as u64;
    let pctx = PriceCtx {
        scalar: scalar_kind::<T>(),
        flavor: opts.flavor(),
        gpus_per_rank: 1.0,
    };
    let mut bench = Bench {
        ctx,
        opts,
        trial_idx: 0,
        residuals: Vec::new(),
    };

    // --- Collective probes: the solver's dominant blocking collectives.
    let n_r = h.n_r() as u64;
    let n_c = h.n_c() as u64;
    let ne64 = ne as u64;
    let mut rules = Vec::new();
    let (mut coll_tuned, mut coll_flat) = (0.0, 0.0);
    let probes: [(&Communicator, CollOp, u64); 5] = [
        // Filter C→B drain: partial HEMM products reduced down grid columns.
        (&ctx.col_comm, CollOp::AllReduce, n_c * ne64 * es),
        // Filter B→C drain: the transposed direction, down grid rows.
        (&ctx.row_comm, CollOp::AllReduce, n_r * ne64 * es),
        // Rayleigh–Ritz Gram/projection allreduce.
        (&ctx.row_comm, CollOp::AllReduce, ne64 * ne64 * es),
        // C-buffer broadcast down columns (square-grid B2 update).
        (&ctx.col_comm, CollOp::Bcast, n_r * ne64 * es),
        // B redistribution allgather along rows (non-square grids).
        (&ctx.row_comm, CollOp::AllGather, n_r * ne64 * es),
    ];
    for (comm, op, bytes) in probes {
        probe_collective::<T>(
            &mut bench,
            comm,
            op,
            bytes,
            &mut rules,
            &mut coll_tuned,
            &mut coll_flat,
        );
    }

    // --- Filter pipeline probes on the real H block.
    let dev = Device::with_collectives(
        ctx,
        opts.backend,
        CollectiveAlgo::Flat,
        opts.machine.topo.clone(),
    );
    let mut c = Matrix::from_fn(h.n_r(), ne, |i, j| {
        T::from_real(<T::Real as RealScalar>::from_f64_r(
            ((i * 31 + j * 17) % 101) as f64 / 101.0 + 0.01,
        ))
    });
    let mut b = Matrix::zeros(h.n_c(), ne);
    let bounds = FilterBounds::from_spectrum(
        <T::Real as RealScalar>::from_f64_r(-2.0),
        <T::Real as RealScalar>::from_f64_r(0.0),
        <T::Real as RealScalar>::from_f64_r(2.0),
    );
    let degrees = vec![TRIAL_DEG; ne];
    let machine = opts.machine.clone();

    let mut measure_filter = |bench: &mut Bench<'_>, mixed: bool, exec_kind: FilterExec| -> f64 {
        bench.run(|local| {
            let start = ctx.ledger_snapshot().events().len();
            if mixed {
                let mut h_lo = h.demote();
                chebyshev_filter_mixed(
                    &dev, ctx, &mut h_lo, &mut c, &mut b, 0, &degrees, bounds, exec_kind,
                )
                .expect("trial filter on validated inputs");
            } else {
                chebyshev_filter_with(&dev, ctx, h, &mut c, &mut b, 0, &degrees, bounds, exec_kind)
                    .expect("trial filter on validated inputs");
            }
            let snap = ctx.ledger_snapshot();
            *local = price_events_overlap(&snap.events()[start..], &machine, pctx).total();
        })
    };

    let filter_flat = measure_filter(&mut bench, false, FilterExec::Flat);
    let (mut best_filter, mut overlap, mut panel) = (filter_flat, false, 0usize);
    for &w in PANEL_MENU {
        if w >= ne {
            break; // a panel spanning the block degenerates to flat
        }
        let cost = measure_filter(&mut bench, false, FilterExec::Pipelined { panel: Some(w) });
        if cost < best_filter {
            best_filter = cost;
            overlap = true;
            panel = w;
        }
    }

    // --- Precision probe: the demoted filter at the winning schedule.
    let best_exec = if overlap {
        FilterExec::Pipelined { panel: Some(panel) }
    } else {
        FilterExec::Flat
    };
    let mut precision = "full";
    if T::HAS_LO {
        let mixed_cost = measure_filter(&mut bench, true, best_exec);
        if mixed_cost < best_filter {
            best_filter = mixed_cost;
            precision = "mixed";
        }
    }

    let entry = PlanEntry {
        key: plan_key::<T>(&opts.machine, ctx.shape.p, ctx.shape.q, h.n, nev, nex),
        rules,
        overlap,
        panel,
        precision: precision.to_string(),
        tuned_cost: coll_tuned + best_filter,
        flat_cost: coll_flat + filter_flat,
        trials: bench.trial_idx,
    };

    // Belt-and-braces world agreement: every score was already allreduced,
    // so divergence here means a rank broke SPMD discipline — fail loudly
    // before the plan schedules a single collective.
    let mut agreed = [entry.content_hash()];
    ctx.world.bcast(&mut agreed, 0);
    assert_eq!(
        agreed[0],
        entry.content_hash(),
        "rank {} diverged from the world-agreed plan",
        ctx.world_rank()
    );

    for (c, ms) in comms.iter().zip(prior_timeouts) {
        c.set_wait_timeout_ms(ms);
    }

    TuneOutcome {
        entry,
        residuals: bench.residuals,
    }
}
