//! Versioned plan database: measured tuning decisions persisted as JSON.
//!
//! The format is deliberately simple — one strict, hand-rolled parser (the
//! `chase-trace` JSON reader) and a canonical emitter, so `parse ∘ emit` is
//! the identity and adversarial inputs (truncation, duplicate keys, version
//! skew) surface as typed [`DbError`]s instead of silently corrupting
//! plans. Entries are keyed by machine fingerprint × grid shape ×
//! problem dimensions × scalar, the axes along which tuning decisions
//! actually vary.

use chase_comm::{TuneAlgo, TuneChoice, TuneOp};
use chase_trace::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt;

/// Current on-disk format version. Parsers reject any other version with
/// [`DbError::VersionSkew`]: plans silently reinterpreted across format
/// changes could pin nonsense schedules.
pub const DB_VERSION: u64 = 1;

/// Format tag distinguishing a plan DB from other JSON artifacts.
pub const DB_FORMAT: &str = "chase-plan-db";

/// Typed failures loading a plan database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Malformed or truncated JSON.
    Parse { detail: String },
    /// Parsed fine but is not a plan DB (wrong or missing format tag).
    NotPlanDb { found: String },
    /// A different format version (no silent migration).
    VersionSkew { found: u64, expected: u64 },
    /// Two entries share one canonical key.
    DuplicateKey { key: String },
    /// A field is missing or holds an out-of-domain value.
    Field { field: &'static str, detail: String },
    /// Filesystem failure reading or writing the DB.
    Io { detail: String },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse { detail } => write!(f, "plan db: malformed JSON: {detail}"),
            DbError::NotPlanDb { found } => {
                write!(f, "plan db: not a plan database (format tag '{found}')")
            }
            DbError::VersionSkew { found, expected } => write!(
                f,
                "plan db: version {found} but this build reads {expected}"
            ),
            DbError::DuplicateKey { key } => write!(f, "plan db: duplicate entry for key '{key}'"),
            DbError::Field { field, detail } => write!(f, "plan db: field '{field}': {detail}"),
            DbError::Io { detail } => write!(f, "plan db: {detail}"),
        }
    }
}

impl std::error::Error for DbError {}

/// The axes a tuning decision depends on; the canonical rendering
/// ([`PlanKey::canonical`]) is the DB key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanKey {
    /// Machine fingerprint (see [`crate::machine_fingerprint`]).
    pub machine: String,
    /// Grid rows.
    pub p: usize,
    /// Grid columns.
    pub q: usize,
    /// Global problem dimension `N`.
    pub n: usize,
    /// Wanted eigenpairs.
    pub nev: usize,
    /// Extra search directions.
    pub nex: usize,
    /// Scalar name: `f32`/`f64`/`c32`/`c64`.
    pub scalar: String,
}

impl PlanKey {
    /// Canonical key string — the BTreeMap key and the `db_key` recorded in
    /// plan provenance.
    pub fn canonical(&self) -> String {
        format!(
            "{}|{}x{}|n={}|nev={}|nex={}|{}",
            self.machine, self.p, self.q, self.n, self.nev, self.nex, self.scalar
        )
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"machine\":\"{}\",\"p\":{},\"q\":{},\"n\":{},\"nev\":{},\"nex\":{},\"scalar\":\"{}\"}}",
            json::escape(&self.machine),
            self.p,
            self.q,
            self.n,
            self.nev,
            self.nex,
            json::escape(&self.scalar)
        )
    }

    fn from_json(v: &Json) -> Result<Self, DbError> {
        Ok(Self {
            machine: str_field(v, "machine")?,
            p: usize_field(v, "p")?,
            q: usize_field(v, "q")?,
            n: usize_field(v, "n")?,
            nev: usize_field(v, "nev")?,
            nex: usize_field(v, "nex")?,
            scalar: str_field(v, "scalar")?,
        })
    }
}

/// One measured collective decision: for `op` over a communicator of
/// `members`, messages up to `max_bytes` run `algo` at `chunk_bytes`
/// granularity. Rules for one `(op, members)` pair partition the size axis;
/// the largest rule also covers everything beyond it.
#[derive(Debug, Clone, PartialEq)]
pub struct CollRule {
    pub op: TuneOp,
    pub members: usize,
    pub max_bytes: u64,
    pub algo: TuneAlgo,
    pub chunk_bytes: u64,
    /// Measured per-rank trial time (seconds) of the winning candidate.
    pub measured: f64,
    /// The analytic alpha-beta prediction for the same candidate (the
    /// modeled-vs-measured residual input).
    pub modeled: f64,
}

impl CollRule {
    fn to_json(&self) -> String {
        format!(
            "{{\"op\":\"{}\",\"members\":{},\"max_bytes\":{},\"algo\":\"{}\",\"chunk\":{},\"measured\":{},\"modeled\":{}}}",
            self.op.name(),
            self.members,
            self.max_bytes,
            self.algo.name(),
            self.chunk_bytes,
            fmt_f64(self.measured),
            fmt_f64(self.modeled),
        )
    }

    fn from_json(v: &Json) -> Result<Self, DbError> {
        let op = match str_field(v, "op")?.as_str() {
            "allreduce" => TuneOp::AllReduce,
            "bcast" => TuneOp::Bcast,
            "allgather" => TuneOp::AllGather,
            other => {
                return Err(DbError::Field {
                    field: "op",
                    detail: format!("unknown collective '{other}'"),
                })
            }
        };
        let algo_s = str_field(v, "algo")?;
        let algo = TuneAlgo::parse(&algo_s).ok_or(DbError::Field {
            field: "algo",
            detail: format!("unknown algorithm '{algo_s}'"),
        })?;
        Ok(Self {
            op,
            members: usize_field(v, "members")?,
            max_bytes: u64_field(v, "max_bytes")?,
            algo,
            chunk_bytes: u64_field(v, "chunk")?,
            measured: f64_field(v, "measured")?,
            modeled: f64_field(v, "modeled")?,
        })
    }
}

/// One tuned configuration: the full decision set for a [`PlanKey`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEntry {
    pub key: PlanKey,
    /// Per-(op, members, size) collective schedule table.
    pub rules: Vec<CollRule>,
    /// Whether the pipelined filter beat the flat one.
    pub overlap: bool,
    /// Winning panel width (meaningful only when `overlap`).
    pub panel: usize,
    /// Winning filter precision: `"full"` or `"mixed"`.
    pub precision: String,
    /// Measured per-rank cost (seconds) of the tuned components of one
    /// iteration under this entry's decisions.
    pub tuned_cost: f64,
    /// The same components under the `Flat` defaults. The flat path is
    /// always among the trial candidates, so `tuned_cost <= flat_cost`.
    pub flat_cost: f64,
    /// Number of micro-benchmark trials that produced this entry.
    pub trials: u64,
}

impl PlanEntry {
    /// Resolve a collective schedule from the rule table: the tightest rule
    /// covering `(op, members, bytes)`, the largest same-`(op, members)`
    /// rule for sizes beyond the measured range, `None` when the table
    /// never measured this `(op, members)` pair at all.
    pub fn choose(&self, op: TuneOp, bytes: u64, members: usize) -> Option<TuneChoice> {
        let mut fallback: Option<&CollRule> = None;
        let mut best: Option<&CollRule> = None;
        for r in &self.rules {
            if r.op != op || r.members != members {
                continue;
            }
            if r.max_bytes >= bytes && best.is_none_or(|b| r.max_bytes < b.max_bytes) {
                best = Some(r);
            }
            if fallback.is_none_or(|f| r.max_bytes > f.max_bytes) {
                fallback = Some(r);
            }
        }
        best.or(fallback).map(|r| TuneChoice {
            algo: r.algo,
            chunk_bytes: r.chunk_bytes,
        })
    }

    /// Stable 64-bit content hash of the canonical JSON rendering — what
    /// ranks compare to world-agree on a plan before executing it.
    pub fn content_hash(&self) -> u64 {
        fnv1a(self.to_json().as_bytes())
    }

    pub fn to_json(&self) -> String {
        let rules: Vec<String> = self.rules.iter().map(CollRule::to_json).collect();
        format!(
            "{{\"key\":{},\"rules\":[{}],\"overlap\":{},\"panel\":{},\"precision\":\"{}\",\"tuned_cost\":{},\"flat_cost\":{},\"trials\":{}}}",
            self.key.to_json(),
            rules.join(","),
            self.overlap,
            self.panel,
            json::escape(&self.precision),
            fmt_f64(self.tuned_cost),
            fmt_f64(self.flat_cost),
            self.trials,
        )
    }

    fn from_json(v: &Json) -> Result<Self, DbError> {
        let key = PlanKey::from_json(v.get("key").ok_or(DbError::Field {
            field: "key",
            detail: "missing".into(),
        })?)?;
        let rules_v = v
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or(DbError::Field {
                field: "rules",
                detail: "missing or not an array".into(),
            })?;
        let rules = rules_v
            .iter()
            .map(CollRule::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let overlap = match v.get("overlap") {
            Some(Json::Bool(b)) => *b,
            _ => {
                return Err(DbError::Field {
                    field: "overlap",
                    detail: "missing or not a bool".into(),
                })
            }
        };
        let precision = str_field(v, "precision")?;
        if precision != "full" && precision != "mixed" {
            return Err(DbError::Field {
                field: "precision",
                detail: format!("'{precision}' is not full|mixed"),
            });
        }
        Ok(Self {
            key,
            rules,
            overlap,
            panel: usize_field(v, "panel")?,
            precision,
            tuned_cost: f64_field(v, "tuned_cost")?,
            flat_cost: f64_field(v, "flat_cost")?,
            trials: u64_field(v, "trials")?,
        })
    }
}

/// The persistent database: canonical-key → entry, emitted in key order so
/// the file is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanDb {
    entries: BTreeMap<String, PlanEntry>,
}

impl PlanDb {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, key: &PlanKey) -> Option<&PlanEntry> {
        self.entries.get(&key.canonical())
    }

    /// Insert (or replace — re-tuning refreshes) an entry.
    pub fn insert(&mut self, entry: PlanEntry) {
        self.entries.insert(entry.key.canonical(), entry);
    }

    pub fn entries(&self) -> impl Iterator<Item = &PlanEntry> {
        self.entries.values()
    }

    /// Canonical JSON rendering; `parse(emit(db)) == db`.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"format\":\"{DB_FORMAT}\",\"version\":{DB_VERSION},\"entries\":[\n"
        ));
        for (i, e) in self.entries.values().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&e.to_json());
        }
        out.push_str("\n]}\n");
        out
    }

    /// Strict parse with typed failures (see [`DbError`]).
    pub fn parse(s: &str) -> Result<Self, DbError> {
        let v = json::parse(s).map_err(|detail| DbError::Parse { detail })?;
        let format = v.get("format").and_then(Json::as_str).unwrap_or("");
        if format != DB_FORMAT {
            return Err(DbError::NotPlanDb {
                found: format.to_string(),
            });
        }
        let version = v.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != DB_VERSION {
            return Err(DbError::VersionSkew {
                found: version,
                expected: DB_VERSION,
            });
        }
        let entries_v = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or(DbError::Field {
                field: "entries",
                detail: "missing or not an array".into(),
            })?;
        let mut db = PlanDb::new();
        for ev in entries_v {
            let e = PlanEntry::from_json(ev)?;
            let key = e.key.canonical();
            if db.entries.contains_key(&key) {
                return Err(DbError::DuplicateKey { key });
            }
            db.entries.insert(key, e);
        }
        Ok(db)
    }

    /// Load from a file; a missing file is an empty database (cold start),
    /// anything else unreadable or unparsable is a typed error.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, DbError> {
        let path = path.as_ref();
        match std::fs::read_to_string(path) {
            Ok(s) => Self::parse(&s),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(DbError::Io {
                detail: format!("{}: {e}", path.display()),
            }),
        }
    }

    /// Persist atomically enough for single-writer use (write + rename).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), DbError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.emit()).map_err(|e| DbError::Io {
            detail: format!("{}: {e}", tmp.display()),
        })?;
        std::fs::rename(&tmp, path).map_err(|e| DbError::Io {
            detail: format!("{}: {e}", path.display()),
        })
    }
}

/// FNV-1a over bytes: the stable content hash used for plan agreement and
/// machine fingerprints (no dependency on `DefaultHasher`'s unstable seed).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Emit an f64 so `str::parse::<f64>` round-trips it exactly (Rust's
/// shortest-representation Display guarantees this).
fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print without a fraction, which the strict parser
        // reads back as the same f64.
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn str_field(v: &Json, field: &'static str) -> Result<String, DbError> {
    v.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(DbError::Field {
            field,
            detail: "missing or not a string".into(),
        })
}

fn u64_field(v: &Json, field: &'static str) -> Result<u64, DbError> {
    v.get(field).and_then(Json::as_u64).ok_or(DbError::Field {
        field,
        detail: "missing or not a non-negative integer".into(),
    })
}

fn usize_field(v: &Json, field: &'static str) -> Result<usize, DbError> {
    u64_field(v, field).map(|x| x as usize)
}

fn f64_field(v: &Json, field: &'static str) -> Result<f64, DbError> {
    match v.get(field) {
        Some(Json::Num(x)) if x.is_finite() => Ok(*x),
        _ => Err(DbError::Field {
            field,
            detail: "missing or not a finite number".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_entry(machine: &str, n: usize) -> PlanEntry {
        PlanEntry {
            key: PlanKey {
                machine: machine.into(),
                p: 2,
                q: 2,
                n,
                nev: 100,
                nex: 40,
                scalar: "c64".into(),
            },
            rules: vec![
                CollRule {
                    op: TuneOp::AllReduce,
                    members: 2,
                    max_bytes: 1 << 20,
                    algo: TuneAlgo::Ring,
                    chunk_bytes: 64 << 10,
                    measured: 1.25e-4,
                    modeled: 1.5e-4,
                },
                CollRule {
                    op: TuneOp::AllReduce,
                    members: 2,
                    max_bytes: u64::MAX,
                    algo: TuneAlgo::Flat,
                    chunk_bytes: 0,
                    measured: 3.0e-4,
                    modeled: 2.5e-4,
                },
            ],
            overlap: true,
            panel: 16,
            precision: "mixed".into(),
            tuned_cost: 1.0e-3,
            flat_cost: 2.0e-3,
            trials: 42,
        }
    }

    #[test]
    fn roundtrip_identity() {
        let mut db = PlanDb::new();
        db.insert(sample_entry("jb-1234", 1000));
        db.insert(sample_entry("jb-1234", 2000));
        let parsed = PlanDb::parse(&db.emit()).expect("roundtrip");
        assert_eq!(parsed, db);
    }

    #[test]
    fn rule_lookup_prefers_tightest_bucket() {
        let e = sample_entry("m", 10);
        let c = e.choose(TuneOp::AllReduce, 1 << 10, 2).unwrap();
        assert_eq!(c.algo, TuneAlgo::Ring);
        let c = e.choose(TuneOp::AllReduce, 8 << 20, 2).unwrap();
        assert_eq!(c.algo, TuneAlgo::Flat);
        assert!(e.choose(TuneOp::AllReduce, 1 << 10, 4).is_none());
        assert!(e.choose(TuneOp::Bcast, 1 << 10, 2).is_none());
    }

    #[test]
    fn truncated_input_is_a_parse_error() {
        let mut db = PlanDb::new();
        db.insert(sample_entry("m", 10));
        let full = db.emit();
        let cut = &full[..full.len() / 2];
        assert!(matches!(
            PlanDb::parse(cut),
            Err(DbError::Parse { .. } | DbError::Field { .. })
        ));
    }

    #[test]
    fn version_skew_is_typed() {
        let s = format!("{{\"format\":\"{DB_FORMAT}\",\"version\":99,\"entries\":[]}}");
        assert_eq!(
            PlanDb::parse(&s),
            Err(DbError::VersionSkew {
                found: 99,
                expected: DB_VERSION
            })
        );
    }

    #[test]
    fn duplicate_key_is_typed() {
        let e = sample_entry("m", 10).to_json();
        let s = format!(
            "{{\"format\":\"{DB_FORMAT}\",\"version\":{DB_VERSION},\"entries\":[{e},{e}]}}"
        );
        assert!(matches!(
            PlanDb::parse(&s),
            Err(DbError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn wrong_format_tag_is_typed() {
        assert!(matches!(
            PlanDb::parse("{\"format\":\"something-else\",\"version\":1,\"entries\":[]}"),
            Err(DbError::NotPlanDb { .. })
        ));
    }
}
