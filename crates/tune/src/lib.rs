//! `chase-tune`: measurement-driven autotuner with a persistent plan
//! database.
//!
//! The solver exposes several knobs whose best setting depends on the
//! machine, the grid shape and the problem size: which hop schedule each
//! collective uses (`CollectiveAlgo`), whether the Chebyshev filter
//! pipelines its HEMM panels (`overlap`/`overlap_panel`), and whether the
//! filter runs in demoted precision (`PrecisionMode`). The analytic
//! alpha-beta model in `chase-topo` picks defaults from first principles;
//! this crate instead *measures*: it runs short deterministic trials of the
//! actual hot paths ([`trial::tune_entry`]), fits the winners into a
//! versioned on-disk [`db::PlanDb`] keyed by machine fingerprint × grid ×
//! problem × scalar, and emits a [`chase_core::SolvePlan`] that fills in
//! whatever knobs `Params` left on `Auto`.
//!
//! Layering: the measured choices flow back into the solver through the
//! [`chase_comm::CollectiveTuneHook`] seam — the device layer consults the
//! hook first and falls back to the analytic model when the DB has no
//! opinion, so a missing or stale DB degrades to exactly the pre-tuner
//! behavior.

pub mod db;
pub mod fingerprint;
pub mod trial;

pub use db::{CollRule, DbError, PlanDb, PlanEntry, PlanKey, DB_FORMAT, DB_VERSION};
pub use fingerprint::machine_fingerprint;
pub use trial::{plan_key, scalar_kind, scalar_name, tune_entry, TuneOptions, TuneOutcome};

use chase_comm::{CollectiveTuneHook, TuneChoice, TuneOp};
use chase_core::{Params, PlanSource, PrecisionMode, SolvePlan};
use chase_device::CollectiveAlgo;

/// A [`CollectiveTuneHook`] backed by one measured [`PlanEntry`]: the
/// device layer's `Auto` arm asks it per collective call, and it answers
/// from the entry's measured rules (falling back to the analytic model by
/// returning `None` for operations the trials never probed).
#[derive(Debug, Clone)]
pub struct MeasuredHook {
    entry: PlanEntry,
}

impl MeasuredHook {
    pub fn new(entry: PlanEntry) -> Self {
        Self { entry }
    }

    pub fn entry(&self) -> &PlanEntry {
        &self.entry
    }
}

impl CollectiveTuneHook for MeasuredHook {
    fn choose(&self, op: TuneOp, bytes: u64, members: usize) -> Option<TuneChoice> {
        self.entry.choose(op, bytes, members)
    }
}

/// Convert a measured DB entry into the [`SolvePlan`] the solver consumes.
///
/// The plan's collective knob is `Auto` — per-call choices come from the
/// [`MeasuredHook`], not a single global algorithm — while overlap, panel
/// and precision are the trial winners. `tuned_cost`/`flat_cost` carry the
/// world-agreed trial metric so callers can report (and tests assert) that
/// the tuned plan is never worse than the flat reference.
pub fn plan_from_entry(entry: &PlanEntry) -> SolvePlan {
    SolvePlan {
        collective: CollectiveAlgo::Auto,
        overlap: entry.overlap,
        overlap_panel: if entry.overlap {
            Some(entry.panel)
        } else {
            None
        },
        precision: if entry.precision == "mixed" {
            PrecisionMode::Mixed
        } else {
            PrecisionMode::Full
        },
        source: PlanSource::Measured {
            db_key: entry.key.canonical(),
        },
        tuned_cost: entry.tuned_cost,
        flat_cost: entry.flat_cost,
    }
}

/// Resolve a plan for `params` from the DB, or report a miss.
///
/// On a hit the plan is applied to `params` (filling only `Auto` knobs —
/// explicit pins always win) and the entry is returned so the caller can
/// install a [`MeasuredHook`] on its rank context.
pub fn resolve_plan(db: &PlanDb, key: &PlanKey, params: &mut Params) -> Option<PlanEntry> {
    let entry = db.get(key)?.clone();
    let plan = plan_from_entry(&entry);
    params.apply_plan(&plan);
    Some(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_comm::TuneAlgo;

    fn entry() -> PlanEntry {
        PlanEntry {
            key: PlanKey {
                machine: "m-0123456789abcdef".into(),
                p: 2,
                q: 2,
                n: 64,
                nev: 8,
                nex: 8,
                scalar: "f64".into(),
            },
            rules: vec![CollRule {
                op: TuneOp::AllReduce,
                members: 2,
                max_bytes: 4096,
                algo: TuneAlgo::Ring,
                chunk_bytes: 1024,
                measured: 1e-5,
                modeled: 2e-5,
            }],
            overlap: true,
            panel: 8,
            precision: "mixed".into(),
            tuned_cost: 1.0,
            flat_cost: 2.0,
            trials: 7,
        }
    }

    #[test]
    fn hook_answers_from_rules() {
        let hook = MeasuredHook::new(entry());
        let c = hook.choose(TuneOp::AllReduce, 2048, 2).expect("rule hit");
        assert_eq!(c.algo, TuneAlgo::Ring);
        assert_eq!(c.chunk_bytes, 1024);
        assert!(hook.choose(TuneOp::Bcast, 2048, 2).is_none());
    }

    #[test]
    fn plan_carries_trial_winners() {
        let plan = plan_from_entry(&entry());
        assert!(plan.overlap);
        assert_eq!(plan.overlap_panel, Some(8));
        assert_eq!(plan.precision, PrecisionMode::Mixed);
        assert!(matches!(plan.source, PlanSource::Measured { .. }));
        assert!(plan.tuned_cost <= plan.flat_cost);
    }

    #[test]
    fn resolve_hits_and_misses() {
        let mut db = PlanDb::new();
        let e = entry();
        let key = e.key.clone();
        db.insert(e);
        let mut p = Params::new(8, 8);
        assert!(resolve_plan(&db, &key, &mut p).is_some());
        assert!(p.plan.is_some());
        let mut other = key.clone();
        other.n = 128;
        let mut p2 = Params::new(8, 8);
        assert!(resolve_plan(&db, &other, &mut p2).is_none());
        assert!(p2.plan.is_none());
    }
}
