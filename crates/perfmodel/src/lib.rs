//! # chase-perfmodel
//!
//! Performance reproduction layer: prices the event ledgers recorded by the
//! functional runtime on a calibrated JUWELS-Booster machine description,
//! and generates analytic event streams for scales the functional simulator
//! cannot reach (Figs. 2–3 of the paper go to 900 nodes / 3600 GPUs /
//! `N = 900k`).
//!
//! * [`machine`] — calibrated A100/InfiniBand constants and per-event cost
//!   functions (MPI-tree vs NCCL-ring collectives, PCIe staging, kernels).
//! * [`profile`] — ledger -> {compute, comm, transfer} per kernel (Fig. 2).
//! * [`analytic`] — symbolic per-iteration event streams mirroring
//!   `chase-core`, validated against live ledgers at small scale.
//! * [`elpa`] — closed-form ELPA1/ELPA2 baselines (Fig. 3b).

pub mod analytic;
pub mod elpa;
pub mod live;
pub mod machine;
pub mod profile;
pub mod residual;

pub use analytic::{
    iteration_events, iteration_events_with_overlap, solve_events, IterationSpec, Layout,
};
pub use elpa::{elpa_time, ElpaKind, ElpaTime};
pub use live::{diff_table, price_trace, region_diff};
pub use machine::{CommFlavor, Machine, ScalarKind};
pub use profile::{
    price_events, price_events_overlap, price_ledger, price_ledger_overlap, profiled_time,
    total_time, PriceCtx, RegionCost,
};
pub use residual::{residual_report, residual_summary, ResidualRow, ResidualSummary};
