//! Cost model for the ELPA baseline of Fig. 3b.
//!
//! ELPA1 (one-stage) and ELPA2 (two-stage) are direct solvers: they always
//! pay for a full `O(N^3)` reduction regardless of how many eigenpairs are
//! requested, and their reductions are rich in panel synchronizations whose
//! latency floor caps strong scaling — exactly the regime (~1% of the
//! spectrum on hundreds of GPUs) where the paper shows ChASE winning by up
//! to 28x. The constants are calibrated against the paper's reported
//! 98 s / 5.9x-speedup data point for ELPA2-GPU on the 115k problem
//! (Section 4.5.2) and documented in EXPERIMENTS.md.

use crate::machine::{Machine, ScalarKind};

/// Which ELPA algorithm to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElpaKind {
    /// One-stage: direct full->tridiagonal Householder reduction.
    Elpa1,
    /// Two-stage: full->band (GEMM-rich) + band->tridiagonal bulge chasing.
    Elpa2,
}

/// Modeled breakdown of one ELPA solve.
#[derive(Debug, Clone, Copy)]
pub struct ElpaTime {
    pub reduction: f64,
    pub bulge_chasing: f64,
    pub tridiagonal_solve: f64,
    pub back_transform: f64,
    pub sync_floor: f64,
}

impl ElpaTime {
    pub fn total(&self) -> f64 {
        self.reduction
            + self.bulge_chasing
            + self.tridiagonal_solve
            + self.back_transform
            + self.sync_floor
    }
}

/// GPU efficiency of the ELPA1 tridiagonalization relative to peak GEMM
/// (half its flops are memory-bound HEMV-like panels).
const ELPA1_TRD_EFF: f64 = 0.035;
/// GPU efficiency of the ELPA2 full->band reduction.
const ELPA2_BAND_EFF: f64 = 0.065;
/// Effective rate of the bulge-chasing stage (cache-unfriendly, partly CPU).
const BULGE_RATE: f64 = 2.0e11;
/// Intermediate bandwidth used by ELPA2-GPU.
const ELPA2_BANDWIDTH: f64 = 64.0;
/// Per-panel synchronization charged `n * log2(P)` times.
const PANEL_SYNC: f64 = 8.0e-5;
/// Divide&Conquer tridiagonal solve rate.
const DC_RATE: f64 = 5.0e10;

/// Model an ELPA solve of an `n x n` complex-double Hermitian problem for
/// the lowest `nev` eigenpairs on `gpus` GPUs.
pub fn elpa_time(machine: &Machine, kind: ElpaKind, n: u64, nev: u64, gpus: u64) -> ElpaTime {
    let nf = n as f64;
    let nevf = nev as f64;
    let p = gpus as f64;
    let fm = ScalarKind::C64.flop_mult();

    let reduction_flops = 4.0 / 3.0 * nf * nf * nf * fm;
    let (reduction, bulge_chasing, back_transforms) = match kind {
        ElpaKind::Elpa1 => {
            let red = reduction_flops / (p * machine.gemm_rate * ELPA1_TRD_EFF);
            // One back-transform: tridiagonal eigenvectors -> full.
            (red, 0.0, 1.0)
        }
        ElpaKind::Elpa2 => {
            let red = reduction_flops / (p * machine.gemm_rate * ELPA2_BAND_EFF);
            // Band -> tridiagonal: 2 n^2 b flops, limited parallelism.
            let bulge_flops = 2.0 * nf * nf * ELPA2_BANDWIDTH * fm;
            let bulge_par = p.sqrt().max(1.0); // bulge chasing scales ~sqrt(P)
            let bulge = bulge_flops / (BULGE_RATE * bulge_par);
            // Two back-transforms (tri->band, band->full).
            (red, bulge, 2.0)
        }
    };

    // D&C on the tridiagonal: values + nev vectors.
    let tridiagonal_solve = (nf * nf + nf * nevf) * fm / DC_RATE / p.sqrt().max(1.0);

    // Back-transform of nev vectors: 2 n^2 nev flops each, GEMM-rich.
    let back_transform = back_transforms * 2.0 * nf * nf * nevf * fm / (p * machine.gemm_rate);

    // Panel-synchronization latency floor: n panels, log2(P) hops each.
    let sync_floor = nf * PANEL_SYNC * (p.log2().max(1.0));

    ElpaTime {
        reduction,
        bulge_chasing,
        tridiagonal_solve,
        back_transform,
        sync_floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Machine {
        Machine::juwels_booster()
    }

    #[test]
    fn calibration_anchor_matches_paper() {
        // Paper: ELPA2-GPU solves the 115k problem for 1200 pairs in ~98 s
        // on 144 nodes (576 GPUs), with ~5.9x speedup from 4 nodes.
        let t144 = elpa_time(&m(), ElpaKind::Elpa2, 115_459, 1_200, 576).total();
        let t4 = elpa_time(&m(), ElpaKind::Elpa2, 115_459, 1_200, 16).total();
        assert!(
            (60.0..160.0).contains(&t144),
            "ELPA2 @144 nodes should be ~98 s, got {t144:.1}"
        );
        let speedup = t4 / t144;
        assert!(
            (4.0..9.0).contains(&speedup),
            "ELPA2 strong-scaling speedup should be ~5.9x, got {speedup:.1}"
        );
    }

    #[test]
    fn elpa1_also_saturates() {
        let t4 = elpa_time(&m(), ElpaKind::Elpa1, 115_459, 1_200, 16).total();
        let t144 = elpa_time(&m(), ElpaKind::Elpa1, 115_459, 1_200, 576).total();
        let speedup = t4 / t144;
        assert!((4.0..10.0).contains(&speedup), "ELPA1 speedup {speedup:.1}");
    }

    #[test]
    fn nev_dependence_is_weak() {
        // Direct solvers barely benefit from asking for fewer pairs.
        let t_small = elpa_time(&m(), ElpaKind::Elpa2, 50_000, 100, 64).total();
        let t_large = elpa_time(&m(), ElpaKind::Elpa2, 50_000, 5_000, 64).total();
        assert!(
            t_large < 3.0 * t_small,
            "direct cost dominated by reduction"
        );
    }

    #[test]
    fn breakdown_is_positive() {
        let t = elpa_time(&m(), ElpaKind::Elpa2, 30_000, 1_000, 16);
        assert!(t.reduction > 0.0);
        assert!(t.bulge_chasing > 0.0);
        assert!(t.back_transform > 0.0);
        assert!(t.sync_floor > 0.0);
        assert!(t.total() > t.reduction);
    }
}
