//! Pricing *recorded* traces (chase-trace) instead of synthetic analytic
//! ledgers — the "live" mode.
//!
//! The analytic model (`crate::analytic`) predicts what a run *should* cost;
//! a recorded trace says what the solver *actually did* (how many filter
//! matvecs after degree optimization, how many QR rungs, how many recovery
//! re-filters). Pricing both through the same [`Machine`] and diffing per
//! region localizes model error: a region where analytic and live disagree is
//! either a model bug or solver behavior the closed forms don't capture.

use crate::machine::Machine;
use crate::profile::{price_ledger, PriceCtx, RegionCost};
use chase_comm::Region;
use chase_trace::{to_ledger, RankTrace};
use std::collections::HashMap;

/// Price one rank's recorded trace per region and category, using the same
/// machinery as the analytic ledgers (`Op` events carry their recorded
/// region, so attribution matches the recording).
pub fn price_trace(
    trace: &RankTrace,
    machine: &Machine,
    ctx: PriceCtx,
) -> HashMap<Region, RegionCost> {
    price_ledger(&to_ledger(trace), machine, ctx)
}

/// Per-region comparison of two priced profiles (typically analytic vs
/// live). Rows in fixed region order; each is
/// `(region, first total, second total)`, regions absent from both skipped.
pub fn region_diff(
    first: &HashMap<Region, RegionCost>,
    second: &HashMap<Region, RegionCost>,
) -> Vec<(Region, f64, f64)> {
    const ORDER: [Region; 6] = [
        Region::Lanczos,
        Region::Filter,
        Region::Qr,
        Region::RayleighRitz,
        Region::Residuals,
        Region::Other,
    ];
    ORDER
        .iter()
        .filter(|r| first.contains_key(r) || second.contains_key(r))
        .map(|r| {
            (
                *r,
                first.get(r).map_or(0.0, RegionCost::total),
                second.get(r).map_or(0.0, RegionCost::total),
            )
        })
        .collect()
}

/// Render a `region_diff` as an aligned text table with relative error.
pub fn diff_table(rows: &[(Region, f64, f64)]) -> String {
    let mut out = format!(
        "{:<14}{:>14}{:>14}{:>10}\n",
        "region", "analytic-s", "live-s", "rel-err"
    );
    for (region, a, b) in rows {
        let rel = if *a > 0.0 { (b - a) / a } else { f64::NAN };
        out.push_str(&format!(
            "{:<14}{a:>14.6}{b:>14.6}{rel:>10.3}\n",
            region.name()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use chase_comm::EventKind;
    use chase_trace::TraceEvent;

    #[test]
    fn priced_trace_matches_equivalent_ledger() {
        let trace = RankTrace {
            rank: 0,
            events: vec![
                TraceEvent::SpanBegin {
                    name: "solve".into(),
                    arg: 0,
                },
                TraceEvent::Op {
                    region: Region::Filter,
                    kind: EventKind::Gemm {
                        m: 512,
                        n: 64,
                        k: 512,
                    },
                },
                TraceEvent::Op {
                    region: Region::Qr,
                    kind: EventKind::AllReduce {
                        bytes: 1 << 16,
                        members: 4,
                    },
                },
                TraceEvent::SpanEnd {
                    name: "solve".into(),
                },
            ],
        };
        let machine = Machine::juwels_booster();
        let costs = price_trace(&trace, &machine, PriceCtx::nccl());
        assert!(costs[&Region::Filter].compute > 0.0);
        assert!(costs[&Region::Qr].comm > 0.0);

        let mut ledger = chase_comm::Ledger::new();
        ledger.record_in(
            Region::Filter,
            EventKind::Gemm {
                m: 512,
                n: 64,
                k: 512,
            },
        );
        ledger.record_in(
            Region::Qr,
            EventKind::AllReduce {
                bytes: 1 << 16,
                members: 4,
            },
        );
        let direct = price_ledger(&ledger, &machine, PriceCtx::nccl());
        assert_eq!(costs, direct, "span events must not change pricing");
    }

    #[test]
    fn diff_rows_are_region_ordered() {
        let mut a = HashMap::new();
        a.insert(
            Region::Qr,
            RegionCost {
                compute: 1.0,
                comm: 0.0,
                transfer: 0.0,
            },
        );
        let mut b = HashMap::new();
        b.insert(
            Region::Filter,
            RegionCost {
                compute: 2.0,
                comm: 0.0,
                transfer: 0.0,
            },
        );
        let rows = region_diff(&a, &b);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, Region::Filter);
        assert_eq!(rows[0].2, 2.0);
        assert_eq!(rows[1].0, Region::Qr);
        assert_eq!(rows[1].1, 1.0);
        let table = diff_table(&rows);
        assert!(table.contains("QR"));
        assert!(table.contains("rel-err"));
    }
}
