//! Modeled-vs-measured residual report.
//!
//! The alpha-beta model of `chase-topo` predicts collective cost
//! analytically; `chase-tune` measures the same operations by executing the
//! real hop schedules and pricing (or wall-clocking) what actually ran.
//! Comparing the two per trial shows *where the analytic model is wrong* —
//! which operation classes, sizes and schedules it mis-ranks — and is the
//! calibration feedback loop for the machine constants.

/// One trial's model/measurement pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualRow {
    /// Human label: operation, size, schedule (e.g. `allreduce 1.2MiB ring/64KiB x4`).
    pub label: String,
    /// Analytic prediction (seconds).
    pub modeled: f64,
    /// Measured trial time (seconds) — deterministic-clock or wall-clock.
    pub measured: f64,
}

impl ResidualRow {
    /// `measured / modeled` (infinite when the model predicted zero for a
    /// nonzero measurement).
    pub fn ratio(&self) -> f64 {
        if self.modeled > 0.0 {
            self.measured / self.modeled
        } else if self.measured > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Summary statistics over a residual set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualSummary {
    pub rows: usize,
    /// Geometric mean of `measured / modeled` — systematic bias of the
    /// analytic model (1.0 = unbiased).
    pub geo_mean_ratio: f64,
    /// Largest `max(ratio, 1/ratio)` — the worst single disagreement.
    pub worst_factor: f64,
}

/// Summarize model-vs-measurement disagreement. Empty input yields the
/// identity summary (no rows, no bias).
pub fn residual_summary(rows: &[ResidualRow]) -> ResidualSummary {
    if rows.is_empty() {
        return ResidualSummary {
            rows: 0,
            geo_mean_ratio: 1.0,
            worst_factor: 1.0,
        };
    }
    let mut log_sum = 0.0;
    let mut worst: f64 = 1.0;
    for r in rows {
        let ratio = r.ratio().clamp(1e-12, 1e12);
        log_sum += ratio.ln();
        worst = worst.max(ratio.max(1.0 / ratio));
    }
    ResidualSummary {
        rows: rows.len(),
        geo_mean_ratio: (log_sum / rows.len() as f64).exp(),
        worst_factor: worst,
    }
}

/// Render the residual set as an aligned text table (CLI `chase tune`
/// report), worst disagreement first, with the summary as a footer.
pub fn residual_report(rows: &[ResidualRow]) -> String {
    let mut sorted: Vec<&ResidualRow> = rows.iter().collect();
    sorted.sort_by(|a, b| {
        let ka = a.ratio().max(1.0 / a.ratio());
        let kb = b.ratio().max(1.0 / b.ratio());
        kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
    });
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(5)
        .max("trial".len());
    let mut out = String::new();
    out.push_str(&format!(
        "{:<label_w$}  {:>12}  {:>12}  {:>8}\n",
        "trial", "modeled", "measured", "ratio"
    ));
    for r in &sorted {
        out.push_str(&format!(
            "{:<label_w$}  {:>10.3}us  {:>10.3}us  {:>8.3}\n",
            r.label,
            r.modeled * 1e6,
            r.measured * 1e6,
            r.ratio()
        ));
    }
    let s = residual_summary(rows);
    out.push_str(&format!(
        "{} trials; geometric-mean measured/modeled {:.3}; worst disagreement {:.2}x\n",
        s.rows, s.geo_mean_ratio, s.worst_factor
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_identity_on_perfect_model() {
        let rows = vec![
            ResidualRow {
                label: "a".into(),
                modeled: 1e-3,
                measured: 1e-3,
            },
            ResidualRow {
                label: "b".into(),
                modeled: 2e-3,
                measured: 2e-3,
            },
        ];
        let s = residual_summary(&rows);
        assert!((s.geo_mean_ratio - 1.0).abs() < 1e-12);
        assert!((s.worst_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_tracks_bias_and_worst() {
        let rows = vec![
            ResidualRow {
                label: "fast".into(),
                modeled: 1e-3,
                measured: 2e-3,
            },
            ResidualRow {
                label: "slow".into(),
                modeled: 1e-3,
                measured: 0.5e-3,
            },
        ];
        let s = residual_summary(&rows);
        // 2x and 0.5x cancel geometrically.
        assert!((s.geo_mean_ratio - 1.0).abs() < 1e-12);
        assert!((s.worst_factor - 2.0).abs() < 1e-12);
    }

    #[test]
    fn report_renders_every_row() {
        let rows = vec![ResidualRow {
            label: "allreduce 1MiB ring".into(),
            modeled: 1e-4,
            measured: 3e-4,
        }];
        let txt = residual_report(&rows);
        assert!(txt.contains("allreduce 1MiB ring"));
        assert!(txt.contains("3.000"));
    }
}
