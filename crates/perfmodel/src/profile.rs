//! Pricing recorded ledgers into the computation / communication /
//! data-movement breakdown of Fig. 2.

use crate::machine::{CommFlavor, Machine, ScalarKind};
use chase_comm::{Category, Ledger, Region};

use std::collections::HashMap;

/// Modeled seconds for one kernel region, split by category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionCost {
    pub compute: f64,
    pub comm: f64,
    pub transfer: f64,
}

impl RegionCost {
    pub fn total(&self) -> f64 {
        self.compute + self.comm + self.transfer
    }

    pub fn add(&mut self, other: &RegionCost) {
        self.compute += other.compute;
        self.comm += other.comm;
        self.transfer += other.transfer;
    }
}

/// Pricing context: which build is being modeled.
#[derive(Debug, Clone, Copy)]
pub struct PriceCtx {
    pub scalar: ScalarKind,
    pub flavor: CommFlavor,
    /// GPUs available to GEMM-class kernels on this rank (4 for the LMS
    /// one-rank-per-node configuration, 1 otherwise).
    pub gpus_per_rank: f64,
}

impl PriceCtx {
    /// ChASE(NCCL): 1 GPU per rank, device-direct collectives.
    pub fn nccl() -> Self {
        Self {
            scalar: ScalarKind::C64,
            flavor: CommFlavor::NcclDeviceDirect,
            gpus_per_rank: 1.0,
        }
    }

    /// ChASE(STD): 1 GPU per rank, host-staged MPI collectives.
    pub fn std() -> Self {
        Self {
            scalar: ScalarKind::C64,
            flavor: CommFlavor::MpiHostStaged,
            gpus_per_rank: 1.0,
        }
    }

    /// ChASE(LMS): 1 rank per node driving 4 GPUs, host-staged MPI.
    pub fn lms() -> Self {
        Self {
            scalar: ScalarKind::C64,
            flavor: CommFlavor::MpiHostStaged,
            gpus_per_rank: 4.0,
        }
    }
}

/// Price every event of a ledger, aggregated per region and category.
pub fn price_ledger(
    ledger: &Ledger,
    machine: &Machine,
    ctx: PriceCtx,
) -> HashMap<Region, RegionCost> {
    let mut out: HashMap<Region, RegionCost> = HashMap::new();
    for ev in ledger.events() {
        let t = machine.event_time(ev, ctx.scalar, ctx.flavor, ctx.gpus_per_rank);
        let slot = out.entry(ev.region).or_default();
        match ev.kind.category() {
            Category::Compute => slot.compute += t,
            Category::Comm => slot.comm += t,
            Category::Transfer => slot.transfer += t,
        }
    }
    out
}

/// Total modeled time across all regions (per rank; the SPMD regions are
/// bulk-synchronous so the per-rank total approximates time-to-solution).
pub fn total_time(costs: &HashMap<Region, RegionCost>) -> f64 {
    costs.values().map(RegionCost::total).sum()
}

/// Total over the four kernel regions profiled in Fig. 2 (excludes Lanczos
/// and bookkeeping).
pub fn profiled_time(costs: &HashMap<Region, RegionCost>) -> f64 {
    Region::PROFILED
        .iter()
        .filter_map(|r| costs.get(r))
        .map(RegionCost::total)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_comm::EventKind;

    #[test]
    fn price_simple_ledger() {
        let mut l = Ledger::new();
        l.record_in(
            Region::Filter,
            EventKind::Gemm {
                m: 100,
                n: 10,
                k: 100,
            },
        );
        l.record_in(
            Region::Filter,
            EventKind::AllReduce {
                bytes: 16_000,
                members: 4,
            },
        );
        l.record_in(Region::Qr, EventKind::D2H { bytes: 1 << 20 });
        let m = Machine::juwels_booster();
        let costs = price_ledger(&l, &m, PriceCtx::std());
        let f = costs[&Region::Filter];
        assert!(f.compute > 0.0 && f.comm > 0.0 && f.transfer == 0.0);
        let q = costs[&Region::Qr];
        assert!(q.transfer > 0.0 && q.compute == 0.0);
        assert!(total_time(&costs) > profiled_time(&costs) * 0.999);
    }

    #[test]
    fn nccl_vs_std_pricing_of_same_ledger() {
        // Same ledger with staging events priced: the flavor changes only
        // the collective cost; the transfer events are in the ledger itself.
        let mut l = Ledger::new();
        l.record_in(
            Region::Filter,
            EventKind::AllReduce {
                bytes: 8 << 20,
                members: 16,
            },
        );
        let m = Machine::juwels_booster();
        let std = price_ledger(&l, &m, PriceCtx::std());
        let nccl = price_ledger(&l, &m, PriceCtx::nccl());
        assert!(nccl[&Region::Filter].comm < std[&Region::Filter].comm);
    }

    #[test]
    fn lms_gets_four_gpus_on_gemm() {
        let mut l = Ledger::new();
        l.record_in(
            Region::Filter,
            EventKind::Gemm {
                m: 2000,
                n: 2000,
                k: 2000,
            },
        );
        let m = Machine::juwels_booster();
        let lms = price_ledger(&l, &m, PriceCtx::lms());
        let std = price_ledger(&l, &m, PriceCtx::std());
        assert!(lms[&Region::Filter].compute < std[&Region::Filter].compute / 2.0);
    }
}
