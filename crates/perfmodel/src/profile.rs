//! Pricing recorded ledgers into the computation / communication /
//! data-movement breakdown of Fig. 2.

use crate::machine::{CommFlavor, Machine, ScalarKind};
use chase_comm::{Category, Ledger, Region};

use std::collections::HashMap;

/// Modeled seconds for one kernel region, split by category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionCost {
    pub compute: f64,
    pub comm: f64,
    pub transfer: f64,
}

impl RegionCost {
    pub fn total(&self) -> f64 {
        self.compute + self.comm + self.transfer
    }

    pub fn add(&mut self, other: &RegionCost) {
        self.compute += other.compute;
        self.comm += other.comm;
        self.transfer += other.transfer;
    }
}

/// Pricing context: which build is being modeled.
#[derive(Debug, Clone, Copy)]
pub struct PriceCtx {
    pub scalar: ScalarKind,
    pub flavor: CommFlavor,
    /// GPUs available to GEMM-class kernels on this rank (4 for the LMS
    /// one-rank-per-node configuration, 1 otherwise).
    pub gpus_per_rank: f64,
}

impl PriceCtx {
    /// ChASE(NCCL): 1 GPU per rank, device-direct collectives.
    pub fn nccl() -> Self {
        Self {
            scalar: ScalarKind::C64,
            flavor: CommFlavor::NcclDeviceDirect,
            gpus_per_rank: 1.0,
        }
    }

    /// ChASE(STD): 1 GPU per rank, host-staged MPI collectives.
    pub fn std() -> Self {
        Self {
            scalar: ScalarKind::C64,
            flavor: CommFlavor::MpiHostStaged,
            gpus_per_rank: 1.0,
        }
    }

    /// ChASE(LMS): 1 rank per node driving 4 GPUs, host-staged MPI.
    pub fn lms() -> Self {
        Self {
            scalar: ScalarKind::C64,
            flavor: CommFlavor::MpiHostStaged,
            gpus_per_rank: 4.0,
        }
    }
}

/// Price every event of a ledger, aggregated per region and category.
pub fn price_ledger(
    ledger: &Ledger,
    machine: &Machine,
    ctx: PriceCtx,
) -> HashMap<Region, RegionCost> {
    let mut out: HashMap<Region, RegionCost> = HashMap::new();
    for ev in ledger.events() {
        let t = machine.event_time(ev, ctx.scalar, ctx.flavor, ctx.gpus_per_rank);
        let slot = out.entry(ev.region).or_default();
        match ev.kind.category() {
            Category::Compute => slot.compute += t,
            Category::Comm => slot.comm += t,
            Category::Transfer => slot.transfer += t,
        }
    }
    out
}

/// Price a ledger with overlap-aware accounting.
///
/// Events outside any overlap window are priced exactly as
/// [`price_ledger`]. Events sharing a `(region, window)` pair — one
/// pipelined filter step — are priced as a unit at
/// `max(compute, comm + transfer)`: compute is always charged in full, and
/// only the *exposed* remainder of communication and staging (what the
/// double-buffered pipeline could not hide behind compute) is charged on
/// top, split proportionally between the comm and transfer categories so
/// the Fig. 2 breakdown stays meaningful.
pub fn price_ledger_overlap(
    ledger: &Ledger,
    machine: &Machine,
    ctx: PriceCtx,
) -> HashMap<Region, RegionCost> {
    let mut out: HashMap<Region, RegionCost> = HashMap::new();
    let mut windows: HashMap<(Region, u32), RegionCost> = HashMap::new();
    for ev in ledger.events() {
        let t = machine.event_time(ev, ctx.scalar, ctx.flavor, ctx.gpus_per_rank);
        let slot = match ev.window {
            Some(w) => windows.entry((ev.region, w)).or_default(),
            None => out.entry(ev.region).or_default(),
        };
        match ev.kind.category() {
            Category::Compute => slot.compute += t,
            Category::Comm => slot.comm += t,
            Category::Transfer => slot.transfer += t,
        }
    }
    for ((region, _), w) in windows {
        let hideable = w.comm + w.transfer;
        let exposed = (hideable - w.compute).max(0.0);
        let scale = if hideable > 0.0 {
            exposed / hideable
        } else {
            0.0
        };
        out.entry(region).or_default().add(&RegionCost {
            compute: w.compute,
            comm: w.comm * scale,
            transfer: w.transfer * scale,
        });
    }
    out
}

/// Price a bare event slice (no region aggregation): the sum of every
/// event's modeled time, as one [`RegionCost`] split by category. The
/// measurement channel of `chase-tune`'s deterministic trials — a trial
/// isolates its events as a ledger slice and prices exactly those.
pub fn price_events(events: &[chase_comm::Event], machine: &Machine, ctx: PriceCtx) -> RegionCost {
    let mut out = RegionCost::default();
    for ev in events {
        let t = machine.event_time(ev, ctx.scalar, ctx.flavor, ctx.gpus_per_rank);
        match ev.kind.category() {
            Category::Compute => out.compute += t,
            Category::Comm => out.comm += t,
            Category::Transfer => out.transfer += t,
        }
    }
    out
}

/// Price a bare event slice with overlap-aware accounting: events sharing
/// an overlap window are charged `compute + max(0, comm + transfer -
/// compute)` as in [`price_ledger_overlap`], events outside any window at
/// their plain sum. Used by `chase-tune` to score pipelined-filter trials.
pub fn price_events_overlap(
    events: &[chase_comm::Event],
    machine: &Machine,
    ctx: PriceCtx,
) -> RegionCost {
    let mut out = RegionCost::default();
    let mut windows: HashMap<u32, RegionCost> = HashMap::new();
    for ev in events {
        let t = machine.event_time(ev, ctx.scalar, ctx.flavor, ctx.gpus_per_rank);
        let slot = match ev.window {
            Some(w) => windows.entry(w).or_default(),
            None => &mut out,
        };
        match ev.kind.category() {
            Category::Compute => slot.compute += t,
            Category::Comm => slot.comm += t,
            Category::Transfer => slot.transfer += t,
        }
    }
    for w in windows.values() {
        let hideable = w.comm + w.transfer;
        let exposed = (hideable - w.compute).max(0.0);
        let scale = if hideable > 0.0 {
            exposed / hideable
        } else {
            0.0
        };
        out.add(&RegionCost {
            compute: w.compute,
            comm: w.comm * scale,
            transfer: w.transfer * scale,
        });
    }
    out
}

/// Total modeled time across all regions (per rank; the SPMD regions are
/// bulk-synchronous so the per-rank total approximates time-to-solution).
pub fn total_time(costs: &HashMap<Region, RegionCost>) -> f64 {
    costs.values().map(RegionCost::total).sum()
}

/// Total over the four kernel regions profiled in Fig. 2 (excludes Lanczos
/// and bookkeeping).
pub fn profiled_time(costs: &HashMap<Region, RegionCost>) -> f64 {
    Region::PROFILED
        .iter()
        .filter_map(|r| costs.get(r))
        .map(RegionCost::total)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_comm::EventKind;

    #[test]
    fn price_simple_ledger() {
        let mut l = Ledger::new();
        l.record_in(
            Region::Filter,
            EventKind::Gemm {
                m: 100,
                n: 10,
                k: 100,
            },
        );
        l.record_in(
            Region::Filter,
            EventKind::AllReduce {
                bytes: 16_000,
                members: 4,
            },
        );
        l.record_in(Region::Qr, EventKind::D2H { bytes: 1 << 20 });
        let m = Machine::juwels_booster();
        let costs = price_ledger(&l, &m, PriceCtx::std());
        let f = costs[&Region::Filter];
        assert!(f.compute > 0.0 && f.comm > 0.0 && f.transfer == 0.0);
        let q = costs[&Region::Qr];
        assert!(q.transfer > 0.0 && q.compute == 0.0);
        assert!(total_time(&costs) > profiled_time(&costs) * 0.999);
    }

    #[test]
    fn overlap_pricing_charges_max_of_compute_and_comm() {
        let m = Machine::juwels_booster();
        let gemm = EventKind::Gemm {
            m: 4000,
            n: 64,
            k: 4000,
        };
        let ar = EventKind::AllReduce {
            bytes: 4000 * 64 * 16,
            members: 4,
        };
        // Windowless ledger: compute + comm are summed.
        let mut flat = Ledger::new();
        flat.record_in(Region::Filter, gemm);
        flat.record_in(Region::Filter, ar);
        let serial = price_ledger_overlap(&flat, &m, PriceCtx::nccl());
        let plain = price_ledger(&flat, &m, PriceCtx::nccl());
        assert_eq!(serial[&Region::Filter], plain[&Region::Filter]);

        // Same events inside one window: total becomes max(compute, comm).
        let mut win = Ledger::new();
        win.record_in_window(Region::Filter, gemm, Some(0));
        win.record_in_window(Region::Filter, ar, Some(0));
        let over = price_ledger_overlap(&win, &m, PriceCtx::nccl());
        let f = over[&Region::Filter];
        let p = plain[&Region::Filter];
        assert!(
            (f.total() - p.compute.max(p.comm)).abs() < 1e-12,
            "window total {} != max({}, {})",
            f.total(),
            p.compute,
            p.comm
        );
        assert_eq!(f.compute, p.compute, "compute always charged in full");
        assert!(f.total() < p.total(), "overlap must be cheaper than serial");

        // Distinct windows do not hide each other.
        let mut two = Ledger::new();
        two.record_in_window(Region::Filter, gemm, Some(0));
        two.record_in_window(Region::Filter, ar, Some(1));
        let t = price_ledger_overlap(&two, &m, PriceCtx::nccl());
        assert!((t[&Region::Filter].total() - p.total()).abs() < 1e-12);
    }

    #[test]
    fn overlap_pricing_splits_exposed_cost_proportionally() {
        // Host-staged window: the exposed remainder keeps the comm:transfer
        // ratio of the raw costs.
        let m = Machine::juwels_booster();
        let mut l = Ledger::new();
        l.record_in_window(
            Region::Filter,
            EventKind::Gemm { m: 10, n: 1, k: 10 },
            Some(3),
        );
        l.record_in_window(Region::Filter, EventKind::D2H { bytes: 8 << 20 }, Some(3));
        l.record_in_window(
            Region::Filter,
            EventKind::AllReduce {
                bytes: 8 << 20,
                members: 8,
            },
            Some(3),
        );
        l.record_in_window(Region::Filter, EventKind::H2D { bytes: 8 << 20 }, Some(3));
        let plain = price_ledger(&l, &m, PriceCtx::std())[&Region::Filter];
        let over = price_ledger_overlap(&l, &m, PriceCtx::std())[&Region::Filter];
        // Tiny gemm: nearly everything is exposed comm/transfer.
        assert!(over.comm > 0.0 && over.transfer > 0.0);
        let ratio_plain = plain.comm / plain.transfer;
        let ratio_over = over.comm / over.transfer;
        assert!((ratio_plain - ratio_over).abs() < 1e-9 * ratio_plain.abs());
        assert!((over.total() - plain.compute.max(plain.comm + plain.transfer)).abs() < 1e-12);
    }

    #[test]
    fn nccl_vs_std_pricing_of_same_ledger() {
        // Same ledger with staging events priced: the flavor changes only
        // the collective cost; the transfer events are in the ledger itself.
        let mut l = Ledger::new();
        l.record_in(
            Region::Filter,
            EventKind::AllReduce {
                bytes: 8 << 20,
                members: 16,
            },
        );
        let m = Machine::juwels_booster();
        let std = price_ledger(&l, &m, PriceCtx::std());
        let nccl = price_ledger(&l, &m, PriceCtx::nccl());
        assert!(nccl[&Region::Filter].comm < std[&Region::Filter].comm);
    }

    #[test]
    fn lms_gets_four_gpus_on_gemm() {
        let mut l = Ledger::new();
        l.record_in(
            Region::Filter,
            EventKind::Gemm {
                m: 2000,
                n: 2000,
                k: 2000,
            },
        );
        let m = Machine::juwels_booster();
        let lms = price_ledger(&l, &m, PriceCtx::lms());
        let std = price_ledger(&l, &m, PriceCtx::std());
        assert!(lms[&Region::Filter].compute < std[&Region::Filter].compute / 2.0);
    }
}
