//! Analytic event-stream generation.
//!
//! For grids too large to run functionally (the paper's 900-node runs would
//! need 3600 ranks and a 900k x 900k matrix), these functions generate the
//! *same* per-rank event stream that `chase-core` records live — mirrored
//! operation by operation — so the pricing model can be evaluated at any
//! scale. A consistency test in `tests/` asserts that the analytic stream
//! matches a live run's ledger (flops per region, bytes per category) at
//! small sizes; beyond that the two share everything through the pricing
//! layer.

use crate::machine::{CommFlavor, ScalarKind};
use chase_comm::{EventKind, Ledger, Region};

/// Which parallel layout to mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// The paper's novel scheme (Algorithm 2): distributed QR/RR/Residuals.
    New,
    /// The v1.2 legacy scheme: redundant QR/RR/Residuals after gathers.
    Lms,
}

/// Parameters of one modeled ChASE iteration on one rank.
#[derive(Debug, Clone, Copy)]
pub struct IterationSpec {
    /// Global problem size.
    pub n: u64,
    /// Search-space width `nev + nex`.
    pub ne: u64,
    /// Active (non-locked) columns this iteration.
    pub active: u64,
    /// Grid rows (column-communicator size).
    pub p: u64,
    /// Grid columns (row-communicator size).
    pub q: u64,
    /// Chebyshev degree applied to every active column.
    pub deg: u64,
    pub layout: Layout,
    /// Whether collectives stage through the host (generates D2H/H2D
    /// events exactly as `chase-device` would).
    pub flavor: CommFlavor,
    pub scalar: ScalarKind,
}

impl IterationSpec {
    fn n_r(&self) -> u64 {
        self.n / self.p
    }
    fn n_c(&self) -> u64 {
        self.n / self.q
    }
    fn sb(&self) -> u64 {
        self.scalar.bytes() as u64
    }
    fn srb(&self) -> u64 {
        // bytes of the real scalar (residual norms)
        match self.scalar {
            ScalarKind::F32 => 4,
            ScalarKind::F64 => 8,
            ScalarKind::C32 => 4,
            ScalarKind::C64 => 8,
        }
    }

    fn staged(&self) -> bool {
        matches!(self.flavor, CommFlavor::MpiHostStaged)
    }
}

fn allreduce(l: &mut Ledger, r: Region, spec: &IterationSpec, bytes: u64, members: u64) {
    if spec.staged() {
        l.record_in(r, EventKind::D2H { bytes });
        l.record_in(r, EventKind::H2D { bytes });
    }
    l.record_in(r, EventKind::AllReduce { bytes, members });
}

fn bcast(l: &mut Ledger, r: Region, spec: &IterationSpec, bytes: u64, members: u64) {
    if spec.staged() {
        // One direction per rank (root D2H, receivers H2D).
        l.record_in(r, EventKind::H2D { bytes });
    }
    l.record_in(r, EventKind::Bcast { bytes, members });
}

fn allgather(l: &mut Ledger, r: Region, spec: &IterationSpec, per_rank_bytes: u64, members: u64) {
    if spec.staged() {
        l.record_in(
            r,
            EventKind::D2H {
                bytes: per_rank_bytes,
            },
        );
        l.record_in(
            r,
            EventKind::H2D {
                bytes: per_rank_bytes * members,
            },
        );
    }
    l.record_in(
        r,
        EventKind::AllGather {
            bytes_per_rank: per_rank_bytes,
            members,
        },
    );
}

/// `B = H^H C` (C-layout to B-layout; allreduce over the column comm).
fn hemm_c_to_b(l: &mut Ledger, r: Region, spec: &IterationSpec, cols: u64) {
    l.record_in(
        r,
        EventKind::Gemm {
            m: spec.n_c(),
            n: cols,
            k: spec.n_r(),
        },
    );
    allreduce(l, r, spec, spec.n_c() * cols * spec.sb(), spec.p);
}

/// `C = H B` (B-layout to C-layout; allreduce over the row comm).
fn hemm_b_to_c(l: &mut Ledger, r: Region, spec: &IterationSpec, cols: u64) {
    l.record_in(
        r,
        EventKind::Gemm {
            m: spec.n_r(),
            n: cols,
            k: spec.n_c(),
        },
    );
    allreduce(l, r, spec, spec.n_r() * cols * spec.sb(), spec.q);
}

/// The filter's event stream: `deg` alternating HEMM applications on the
/// active columns. With `overlap_panel = Some(w)` each step is emitted
/// panel-chunked inside its own overlap window — per-panel GEMM, staging
/// and allreduce events tagged with the window id, mirroring the live
/// pipelined filter — so [`crate::price_ledger_overlap`] prices the step
/// at `max(compute, comm)`. Totals (flops, bytes) are identical to the
/// flat stream; only the event granularity and window tags differ.
fn filter_events(l: &mut Ledger, spec: &IterationSpec, overlap_panel: Option<u64>) {
    let act = spec.active;
    for step in 1..=spec.deg {
        // Odd steps run C->B (column-comm allreduce), even steps B->C.
        let (m, k, members) = if step % 2 == 1 {
            (spec.n_c(), spec.n_r(), spec.p)
        } else {
            (spec.n_r(), spec.n_c(), spec.q)
        };
        match overlap_panel {
            None => {
                if step % 2 == 1 {
                    hemm_c_to_b(l, Region::Filter, spec, act);
                } else {
                    hemm_b_to_c(l, Region::Filter, spec, act);
                }
            }
            Some(panel) => {
                let panel = panel.max(1);
                let win = l.begin_window();
                let mut done = 0;
                while done < act {
                    let w = panel.min(act - done);
                    l.record_in_window(Region::Filter, EventKind::Gemm { m, n: w, k }, Some(win));
                    let bytes = m * w * spec.sb();
                    if spec.staged() {
                        l.record_in_window(Region::Filter, EventKind::D2H { bytes }, Some(win));
                        l.record_in_window(Region::Filter, EventKind::H2D { bytes }, Some(win));
                    }
                    l.record_in_window(
                        Region::Filter,
                        EventKind::AllReduce { bytes, members },
                        Some(win),
                    );
                    done += w;
                }
                l.end_window();
            }
        }
    }
}

/// Event stream of one ChASE iteration on one rank, mirroring
/// `chase_core::solver` / `chase_core::lms` with a uniform degree and
/// CholeskyQR2 (the QR the NCCL build settles on; Section 4.4).
pub fn iteration_events(spec: &IterationSpec) -> Ledger {
    iteration_events_impl(spec, None)
}

/// [`iteration_events`] with the filter emitted on the overlapped pipeline
/// at the given panel width (columns).
pub fn iteration_events_with_overlap(spec: &IterationSpec, overlap_panel: u64) -> Ledger {
    iteration_events_impl(spec, Some(overlap_panel))
}

fn iteration_events_impl(spec: &IterationSpec, overlap_panel: Option<u64>) -> Ledger {
    let mut l = Ledger::new();
    let ne = spec.ne;
    let act = spec.active;
    let sb = spec.sb();

    // --- Filter: deg alternating HEMM applications on active columns ---
    filter_events(&mut l, spec, overlap_panel);

    match spec.layout {
        Layout::New => {
            // --- QR: CholeskyQR2 on the full ne columns ---
            for _ in 0..2 {
                l.record_in(
                    Region::Qr,
                    EventKind::Herk {
                        m: spec.n_r(),
                        n: ne,
                    },
                );
                allreduce(&mut l, Region::Qr, spec, ne * ne * sb, spec.p);
                l.record_in(Region::Qr, EventKind::Potrf { n: ne });
                l.record_in(
                    Region::Qr,
                    EventKind::Trsm {
                        m: spec.n_r(),
                        n: ne,
                    },
                );
            }
            // --- Rayleigh-Ritz ---
            bcast(
                &mut l,
                Region::RayleighRitz,
                spec,
                spec.n_c() * ne * sb,
                spec.p,
            );
            hemm_c_to_b(&mut l, Region::RayleighRitz, spec, act);
            l.record_in(
                Region::RayleighRitz,
                EventKind::Gemm {
                    m: act,
                    n: act,
                    k: spec.n_c(),
                },
            );
            allreduce(&mut l, Region::RayleighRitz, spec, act * act * sb, spec.q);
            l.record_in(Region::RayleighRitz, EventKind::Heevd { n: act });
            l.record_in(
                Region::RayleighRitz,
                EventKind::Gemm {
                    m: spec.n_r(),
                    n: act,
                    k: act,
                },
            );
            bcast(
                &mut l,
                Region::RayleighRitz,
                spec,
                spec.n_c() * ne * sb,
                spec.p,
            );
            // --- Residuals ---
            hemm_c_to_b(&mut l, Region::Residuals, spec, act);
            l.record_in(
                Region::Residuals,
                EventKind::Blas1 {
                    n: spec.n_c() * act * 2,
                },
            );
            allreduce(&mut l, Region::Residuals, spec, act * spec.srb(), spec.q);
        }
        Layout::Lms => {
            // --- QR: gather + redundant Householder ---
            allgather(&mut l, Region::Qr, spec, spec.n_r() * ne * sb, spec.p);
            l.record_in(Region::Qr, EventKind::HhQr { m: spec.n, n: ne });
            // --- Rayleigh-Ritz: gather + redundant quotient/back-transform ---
            hemm_c_to_b(&mut l, Region::RayleighRitz, spec, act);
            allgather(
                &mut l,
                Region::RayleighRitz,
                spec,
                spec.n_c() * ne * sb,
                spec.q,
            );
            l.record_in(
                Region::RayleighRitz,
                EventKind::Gemm {
                    m: act,
                    n: act,
                    k: spec.n,
                },
            );
            l.record_in(Region::RayleighRitz, EventKind::Heevd { n: act });
            l.record_in(
                Region::RayleighRitz,
                EventKind::Gemm {
                    m: spec.n,
                    n: act,
                    k: act,
                },
            );
            // --- Residuals: gather + redundant norms ---
            hemm_c_to_b(&mut l, Region::Residuals, spec, act);
            allgather(
                &mut l,
                Region::Residuals,
                spec,
                spec.n_c() * ne * sb,
                spec.q,
            );
            l.record_in(
                Region::Residuals,
                EventKind::Blas1 {
                    n: spec.n * act * 2,
                },
            );
        }
    }
    l
}

/// Multi-iteration solve model: price a sequence of `(active, deg)` pairs
/// (e.g. replayed from a live small-scale run's `IterStats`).
pub fn solve_events(base: &IterationSpec, schedule: &[(u64, u64)]) -> Ledger {
    let mut total = Ledger::new();
    for &(active, deg) in schedule {
        let spec = IterationSpec {
            active,
            deg,
            ..*base
        };
        total.absorb(&iteration_events(&spec));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_comm::Category;

    fn spec(layout: Layout, flavor: CommFlavor) -> IterationSpec {
        IterationSpec {
            n: 1200,
            ne: 120,
            active: 120,
            p: 2,
            q: 2,
            deg: 20,
            layout,
            flavor,
            scalar: ScalarKind::C64,
        }
    }

    #[test]
    fn nccl_stream_has_no_transfers() {
        let l = iteration_events(&spec(Layout::New, CommFlavor::NcclDeviceDirect));
        assert_eq!(l.bytes_in(Category::Transfer), 0);
        assert!(l.bytes_in(Category::Comm) > 0);
    }

    #[test]
    fn std_stream_stages_every_collective() {
        let l = iteration_events(&spec(Layout::New, CommFlavor::MpiHostStaged));
        assert!(l.bytes_in(Category::Transfer) > 0);
    }

    #[test]
    fn lms_moves_more_data_than_new() {
        let lms = iteration_events(&spec(Layout::Lms, CommFlavor::MpiHostStaged));
        let new = iteration_events(&spec(Layout::New, CommFlavor::MpiHostStaged));
        assert!(
            lms.bytes_in(Category::Comm) > new.bytes_in(Category::Comm),
            "legacy layout must communicate more: {} vs {}",
            lms.bytes_in(Category::Comm),
            new.bytes_in(Category::Comm)
        );
    }

    #[test]
    fn filter_flops_scale_with_degree() {
        let mut s = spec(Layout::New, CommFlavor::NcclDeviceDirect);
        let f20 = iteration_events(&s).flops_in(Region::Filter);
        s.deg = 40;
        let f40 = iteration_events(&s).flops_in(Region::Filter);
        assert_eq!(f40, 2 * f20);
    }

    #[test]
    fn overlap_stream_preserves_totals_and_tags_windows() {
        let s = spec(Layout::New, CommFlavor::MpiHostStaged);
        let flat = iteration_events(&s);
        let over = iteration_events_with_overlap(&s, 16);
        // Panel-chunking splits events but must conserve every total.
        assert_eq!(flat.flops_in(Region::Filter), over.flops_in(Region::Filter));
        assert_eq!(flat.bytes_in(Category::Comm), over.bytes_in(Category::Comm));
        assert_eq!(
            flat.bytes_in(Category::Transfer),
            over.bytes_in(Category::Transfer)
        );
        // One window per filter step, none elsewhere.
        let windows: std::collections::HashSet<_> =
            over.events().iter().filter_map(|e| e.window).collect();
        assert_eq!(windows.len(), s.deg as usize);
        assert!(over
            .events()
            .iter()
            .all(|e| e.window.is_none() || e.region == Region::Filter));
    }

    #[test]
    fn modeled_overlap_beats_serialized_filter() {
        use crate::machine::Machine;
        use crate::profile::{price_ledger, price_ledger_overlap, PriceCtx};
        // Large enough that the per-rank GEMM dominates the ~20us per-call
        // collective latency; a half-block split then hides the allreduces
        // almost entirely.
        let mut s = spec(Layout::New, CommFlavor::NcclDeviceDirect);
        s.n = 4800;
        let m = Machine::juwels_booster();
        let serial = price_ledger(&iteration_events(&s), &m, PriceCtx::nccl());
        let over =
            price_ledger_overlap(&iteration_events_with_overlap(&s, 60), &m, PriceCtx::nccl());
        assert!(
            over[&Region::Filter].total() < serial[&Region::Filter].total(),
            "pipelined filter must be cheaper in modeled time: {} vs {}",
            over[&Region::Filter].total(),
            serial[&Region::Filter].total()
        );
    }

    #[test]
    fn solve_events_accumulates() {
        let base = spec(Layout::New, CommFlavor::NcclDeviceDirect);
        let single = iteration_events(&base);
        let triple = solve_events(&base, &[(120, 20), (120, 20), (120, 20)]);
        assert_eq!(
            triple.flops_in(Region::Filter),
            3 * single.flops_in(Region::Filter)
        );
    }
}
