//! Machine description and per-event pricing.
//!
//! The constants approximate one JUWELS-Booster node slice as used by the
//! paper: one NVIDIA A100-40GB per MPI rank (4 per node), PCIe-gen4 host
//! links, 4x HDR-200 InfiniBand per node. They are *calibration* constants —
//! chosen so the priced event streams reproduce the magnitudes and, more
//! importantly, the shapes of the paper's Table 2 and Figs. 2–3 — and are
//! documented as such in EXPERIMENTS.md.

use chase_comm::{Category, Event, EventKind};
use chase_topo::Topology;

/// Which of the four ChASE scalar types is being priced (flop multiplier
/// relative to the ledger's generic `2 m n k` counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarKind {
    F32,
    F64,
    C32,
    C64,
}

impl ScalarKind {
    /// Real-flop multiplier: one complex fused multiply-add is 4 real
    /// multiplies + 4 adds ~ 4x the generic count.
    pub fn flop_mult(self) -> f64 {
        match self {
            ScalarKind::F32 | ScalarKind::F64 => 1.0,
            ScalarKind::C32 | ScalarKind::C64 => 4.0,
        }
    }

    pub fn bytes(self) -> usize {
        match self {
            ScalarKind::F32 => 4,
            ScalarKind::F64 => 8,
            ScalarKind::C32 => 8,
            ScalarKind::C64 => 16,
        }
    }

    /// The demoted (single-precision) kind this scalar's mixed-precision
    /// filter runs in; used to price ledger events stamped `lo`.
    pub fn demoted(self) -> ScalarKind {
        match self {
            ScalarKind::F32 | ScalarKind::F64 => ScalarKind::F32,
            ScalarKind::C32 | ScalarKind::C64 => ScalarKind::C32,
        }
    }

    /// Throughput multiplier relative to the calibrated double-precision
    /// rates: non-tensor-core FP32 GEMM on an A100 sustains ~2x the FP64
    /// rate (19.5 vs 9.7 TFLOP/s peak), and the BLAS-1/bandwidth terms pick
    /// up their own factor through the halved [`ScalarKind::bytes`].
    pub fn rate_mult(self) -> f64 {
        match self {
            ScalarKind::F32 | ScalarKind::C32 => 2.0,
            ScalarKind::F64 | ScalarKind::C64 => 1.0,
        }
    }
}

/// How collectives move data (the STD-vs-NCCL axis of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommFlavor {
    /// Host-staged MPI: tree collectives on host buffers; the D2H/H2D
    /// events in the ledger carry the staging cost.
    MpiHostStaged,
    /// Device-direct NCCL: ring collectives over NVLink/InfiniBand.
    NcclDeviceDirect,
}

/// Calibrated machine model.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Effective large-GEMM rate per GPU, real flops/s.
    pub gemm_rate: f64,
    /// Effective HERK/TRSM rate per GPU.
    pub level3_rate: f64,
    /// Effective POTRF rate (small matrices, latency-heavy).
    pub potrf_rate: f64,
    /// Effective dense Hermitian eigensolver rate (cuSOLVER heevd).
    pub heevd_rate: f64,
    /// Effective Householder-QR rate (cuSOLVER geqrf/ungqr; ScaLAPACK-like
    /// panel synchronization is charged separately per column).
    pub hhqr_rate: f64,
    /// Per-column synchronization overhead of the distributed HHQR
    /// (ScaLAPACK panel broadcasts; the reason HHQR dominates Table 2).
    pub hhqr_panel_sync: f64,
    /// Device memory bandwidth (BLAS-1), bytes/s.
    pub hbm_bw: f64,
    /// Kernel launch overhead per compute event.
    pub launch_overhead: f64,
    /// Host<->device copy bandwidth, bytes/s (PCIe gen4 x16 effective).
    pub pcie_bw: f64,
    /// Host<->device copy latency per transfer.
    pub pcie_latency: f64,
    /// MPI point-to-point bandwidth per rank, bytes/s.
    pub mpi_bw: f64,
    /// MPI per-message latency.
    pub mpi_latency: f64,
    /// NCCL ring bandwidth per GPU, bytes/s (NVLink within node, HDR
    /// across; the effective blended figure).
    pub nccl_bw: f64,
    /// NCCL per-step latency.
    pub nccl_latency: f64,
    /// Hierarchical link topology used to price the per-hop `P2p` events
    /// emitted by the `chase-topo` collective schedules.
    pub topo: Topology,
}

impl Machine {
    /// JUWELS-Booster-like calibration (see module docs).
    pub fn juwels_booster() -> Self {
        Self {
            gemm_rate: 1.5e13,
            level3_rate: 1.2e13,
            potrf_rate: 6.0e11,
            heevd_rate: 8.0e11,
            hhqr_rate: 2.0e11,
            hhqr_panel_sync: 3.0e-4,
            hbm_bw: 1.3e12,
            launch_overhead: 8.0e-6,
            pcie_bw: 2.2e10,
            pcie_latency: 1.0e-5,
            mpi_bw: 1.1e10,
            mpi_latency: 4.0e-6,
            nccl_bw: 2.2e10,
            nccl_latency: 2.0e-5,
            topo: Topology::juwels_booster(),
        }
    }

    /// Time for a compute event. `gpus` lets the LMS configuration use its
    /// 4 GPUs per rank for the GEMM-heavy filter kernels.
    pub fn compute_time(&self, kind: &EventKind, scalar: ScalarKind, gpus: f64) -> f64 {
        let flops = kind.flops() as f64 * scalar.flop_mult();
        let rm = scalar.rate_mult();
        let t = match kind {
            EventKind::Gemm { .. } => flops / (self.gemm_rate * rm * gpus),
            EventKind::Herk { .. } | EventKind::Trsm { .. } => {
                flops / (self.level3_rate * rm * gpus)
            }
            EventKind::Potrf { .. } => flops / self.potrf_rate,
            EventKind::Heevd { .. } => flops / self.heevd_rate,
            EventKind::HhQr { n, .. } => flops / self.hhqr_rate + *n as f64 * self.hhqr_panel_sync,
            EventKind::Blas1 { n } => (*n as f64 * scalar.bytes() as f64 * 2.0) / self.hbm_bw,
            _ => return 0.0,
        };
        t + self.launch_overhead
    }

    /// Time for a host<->device staging copy.
    pub fn transfer_time(&self, kind: &EventKind) -> f64 {
        match kind {
            EventKind::H2D { bytes } | EventKind::D2H { bytes } => {
                self.pcie_latency + *bytes as f64 / self.pcie_bw
            }
            _ => 0.0,
        }
    }

    /// Time for a collective. `members` comes from the event itself.
    ///
    /// MPI collectives use a binary-tree schedule: `ceil(log2 k)` steps,
    /// plus one extra step when `k` is not a power of two — this asymmetry
    /// produces the characteristic dips of Fig. 3a at 4/16/64/256 nodes.
    /// NCCL collectives use a ring schedule.
    pub fn comm_time(&self, kind: &EventKind, flavor: CommFlavor) -> f64 {
        // Per-hop events carry their own link class; the topology prices
        // them directly with the alpha-beta parameters of the chosen path.
        if let EventKind::P2p { bytes, link } = kind {
            let direct = matches!(flavor, CommFlavor::NcclDeviceDirect);
            return self.topo.hop_time(*bytes, *link, direct);
        }
        let (bytes, members) = match kind {
            EventKind::AllReduce { bytes, members } => (*bytes as f64, *members),
            EventKind::Bcast { bytes, members } => (*bytes as f64, *members),
            EventKind::AllGather {
                bytes_per_rank,
                members,
            } => {
                // Modeled as the per-task broadcasts of the legacy layout:
                // linear in the member count (Section 2.3).
                let k = *members as f64;
                return match flavor {
                    CommFlavor::MpiHostStaged => {
                        k * (self.mpi_latency + *bytes_per_rank as f64 / self.mpi_bw)
                    }
                    CommFlavor::NcclDeviceDirect => {
                        (k - 1.0) * self.nccl_latency
                            + (k - 1.0) * *bytes_per_rank as f64 / self.nccl_bw
                    }
                };
            }
            EventKind::Barrier { members } => {
                let k = *members as f64;
                return match flavor {
                    CommFlavor::MpiHostStaged => self.mpi_latency * k.log2().ceil().max(1.0),
                    CommFlavor::NcclDeviceDirect => self.nccl_latency,
                };
            }
            EventKind::GridShrink { to_ranks, .. } => {
                // Agreement round over the survivors plus communicator
                // reconstruction: two latency-bound tree sweeps (ULFM's
                // shrink is latency-, not bandwidth-, dominated).
                let k = (*to_ranks as f64).max(1.0);
                let steps = k.log2().ceil().max(1.0);
                return match flavor {
                    CommFlavor::MpiHostStaged => 2.0 * steps * self.mpi_latency,
                    CommFlavor::NcclDeviceDirect => 2.0 * steps * self.nccl_latency,
                };
            }
            EventKind::Redistribute { bytes } => {
                // Panel re-materialization streams the replacement block
                // over the network once (lost panels regenerate locally at
                // memory bandwidth, which the dominant network term hides).
                let b = *bytes as f64;
                return match flavor {
                    CommFlavor::MpiHostStaged => self.mpi_latency + b / self.mpi_bw,
                    CommFlavor::NcclDeviceDirect => self.nccl_latency + b / self.nccl_bw,
                };
            }
            _ => return 0.0,
        };
        if members <= 1 {
            return 0.0;
        }
        let k = members as f64;
        match (flavor, kind) {
            (CommFlavor::MpiHostStaged, EventKind::AllReduce { .. }) => {
                let mut steps = k.log2().ceil();
                if !members.is_power_of_two() {
                    steps += 1.0;
                }
                2.0 * steps * (self.mpi_latency + bytes / self.mpi_bw)
            }
            (CommFlavor::MpiHostStaged, EventKind::Bcast { .. }) => {
                let mut steps = k.log2().ceil();
                if !members.is_power_of_two() {
                    steps += 1.0;
                }
                steps * (self.mpi_latency + bytes / self.mpi_bw)
            }
            (CommFlavor::NcclDeviceDirect, EventKind::AllReduce { .. }) => {
                2.0 * (k - 1.0) / k * bytes / self.nccl_bw + (k - 1.0) * self.nccl_latency
            }
            (CommFlavor::NcclDeviceDirect, EventKind::Bcast { .. }) => {
                bytes / self.nccl_bw + (k - 1.0) * self.nccl_latency
            }
            _ => 0.0,
        }
    }

    /// Total time for one event. Events stamped `lo` (recorded while the
    /// ledger was in mixed-precision filter mode) are priced at the demoted
    /// scalar kind: doubled level-3 rate, and their collective payloads
    /// already carry half-width byte counts from the `T::Lo` buffers.
    pub fn event_time(&self, ev: &Event, scalar: ScalarKind, flavor: CommFlavor, gpus: f64) -> f64 {
        let scalar = if ev.lo { scalar.demoted() } else { scalar };
        match ev.kind.category() {
            Category::Compute => self.compute_time(&ev.kind, scalar, gpus),
            Category::Transfer => self.transfer_time(&ev.kind),
            Category::Comm => self.comm_time(&ev.kind, flavor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_comm::Region;

    fn m() -> Machine {
        Machine::juwels_booster()
    }

    #[test]
    fn scalar_multipliers() {
        assert_eq!(ScalarKind::C64.flop_mult(), 4.0);
        assert_eq!(ScalarKind::F64.flop_mult(), 1.0);
        assert_eq!(ScalarKind::C64.bytes(), 16);
    }

    #[test]
    fn gemm_time_scales_with_flops() {
        let small = m().compute_time(
            &EventKind::Gemm {
                m: 100,
                n: 100,
                k: 100,
            },
            ScalarKind::C64,
            1.0,
        );
        let big = m().compute_time(
            &EventKind::Gemm {
                m: 1000,
                n: 1000,
                k: 1000,
            },
            ScalarKind::C64,
            1.0,
        );
        assert!(big > 100.0 * small * 0.5, "cubic growth expected");
        // 4 GPUs: ~4x faster on big GEMMs
        let big4 = m().compute_time(
            &EventKind::Gemm {
                m: 1000,
                n: 1000,
                k: 1000,
            },
            ScalarKind::C64,
            4.0,
        );
        assert!(big4 < big / 3.0);
    }

    #[test]
    fn hhqr_much_slower_than_cholesky_pipeline() {
        // Table 2's core fact: at equal sizes, HHQR >> Gram+POTRF+TRSM.
        let mm = m();
        let (rows, cols) = (30_000u64, 2_960u64);
        let hh = mm.compute_time(&EventKind::HhQr { m: rows, n: cols }, ScalarKind::C64, 1.0);
        let chol = mm.compute_time(&EventKind::Herk { m: rows, n: cols }, ScalarKind::C64, 1.0)
            + mm.compute_time(&EventKind::Potrf { n: cols }, ScalarKind::C64, 1.0)
            + mm.compute_time(&EventKind::Trsm { m: rows, n: cols }, ScalarKind::C64, 1.0);
        assert!(
            hh > 10.0 * chol,
            "HHQR {hh:.3} vs CholeskyQR path {chol:.3}"
        );
    }

    #[test]
    fn mpi_power_of_two_dip() {
        let mm = m();
        let t16 = mm.comm_time(
            &EventKind::AllReduce {
                bytes: 1 << 20,
                members: 16,
            },
            CommFlavor::MpiHostStaged,
        );
        let t17 = mm.comm_time(
            &EventKind::AllReduce {
                bytes: 1 << 20,
                members: 17,
            },
            CommFlavor::MpiHostStaged,
        );
        let t15 = mm.comm_time(
            &EventKind::AllReduce {
                bytes: 1 << 20,
                members: 15,
            },
            CommFlavor::MpiHostStaged,
        );
        assert!(t16 < t17, "power of two must be faster");
        assert!(t16 < t15, "15 ranks needs as many tree steps plus padding");
    }

    #[test]
    fn nccl_beats_mpi_on_large_payloads() {
        let mm = m();
        let ev = EventKind::AllReduce {
            bytes: 64 << 20,
            members: 30,
        };
        let nccl = mm.comm_time(&ev, CommFlavor::NcclDeviceDirect);
        let mpi = mm.comm_time(&ev, CommFlavor::MpiHostStaged);
        assert!(nccl < mpi, "nccl {nccl} vs mpi {mpi}");
    }

    #[test]
    fn solo_collectives_are_free() {
        let mm = m();
        assert_eq!(
            mm.comm_time(
                &EventKind::AllReduce {
                    bytes: 100,
                    members: 1
                },
                CommFlavor::NcclDeviceDirect
            ),
            0.0
        );
    }

    #[test]
    fn lo_events_priced_at_demoted_kind() {
        let mm = m();
        assert_eq!(ScalarKind::C64.demoted(), ScalarKind::C32);
        assert_eq!(ScalarKind::F32.demoted(), ScalarKind::F32);
        let kind = EventKind::Gemm {
            m: 2000,
            n: 500,
            k: 2000,
        };
        let mut ev = Event::new(kind, Region::Filter);
        let full = mm.event_time(&ev, ScalarKind::C64, CommFlavor::NcclDeviceDirect, 1.0);
        ev.lo = true;
        let low = mm.event_time(&ev, ScalarKind::C64, CommFlavor::NcclDeviceDirect, 1.0);
        assert!(
            low < 0.6 * full,
            "demoted GEMM must price ~2x faster: {low} vs {full}"
        );
        // A natively single-precision run gains nothing from `lo`.
        let f32_full = mm.event_time(&ev, ScalarKind::F32, CommFlavor::NcclDeviceDirect, 1.0);
        ev.lo = false;
        let f32_hi = mm.event_time(&ev, ScalarKind::F32, CommFlavor::NcclDeviceDirect, 1.0);
        assert_eq!(f32_full, f32_hi);
    }

    #[test]
    fn event_time_dispatch() {
        let mm = m();
        let ev = Event::new(EventKind::D2H { bytes: 1 << 20 }, Region::Qr);
        let t = mm.event_time(&ev, ScalarKind::C64, CommFlavor::MpiHostStaged, 1.0);
        assert!(t > 0.0);
        assert!((t - (mm.pcie_latency + (1u64 << 20) as f64 / mm.pcie_bw)).abs() < 1e-12);
    }

    #[test]
    fn p2p_hops_priced_by_link_and_path() {
        use chase_comm::LinkClass;
        let mm = m();
        for link in [LinkClass::NvLink, LinkClass::Ib] {
            let ev = EventKind::P2p {
                bytes: 1 << 20,
                link,
            };
            let nccl = mm.comm_time(&ev, CommFlavor::NcclDeviceDirect);
            let mpi = mm.comm_time(&ev, CommFlavor::MpiHostStaged);
            assert!(nccl > 0.0);
            assert!(nccl < mpi, "device-direct hop must be cheaper on {link:?}");
            assert!((nccl - mm.topo.hop_time(1 << 20, link, true)).abs() < 1e-15);
        }
        let nv = mm.comm_time(
            &EventKind::P2p {
                bytes: 1 << 20,
                link: LinkClass::NvLink,
            },
            CommFlavor::NcclDeviceDirect,
        );
        let ib = mm.comm_time(
            &EventKind::P2p {
                bytes: 1 << 20,
                link: LinkClass::Ib,
            },
            CommFlavor::NcclDeviceDirect,
        );
        assert!(nv < ib, "NVLink hop must beat InfiniBand hop");
    }
}
