//! Versioned solver checkpoints: the restart substrate of the elastic
//! rank-failure recovery pipeline (DESIGN.md §15).
//!
//! A [`Snapshot`] captures everything the resumed solve needs to continue
//! bitwise-deterministically on a *different* grid: the iteration cursor,
//! the locked count, Ritz values / residuals / degrees, the refined
//! spectral bounds, and the full global iterate `C` (assembled over the
//! column communicator, so every rank holds it at save time). The local
//! `H` panel is deliberately *not* stored — panels are rebuilt from the
//! deterministic matgen seed on the shrunk grid, which is both smaller on
//! disk and exact.
//!
//! The format follows the plan-DB idiom: one strict hand-rolled JSON
//! parser, a canonical emitter (`parse ∘ emit` is the identity), an FNV-1a
//! checksum over the canonical snapshot body, and typed [`CkptError`]s for
//! every corruption class (truncation, version skew, checksum mismatch).
//! Floating-point payloads are stored as hexadecimal `f64` bit patterns so
//! restores are bitwise and NaN-safe.

use chase_linalg::{Matrix, RealScalar, Scalar, SpectralBounds};
use chase_trace::json::{self, Json};
use std::fmt;
use std::path::{Path, PathBuf};

/// Current on-disk format version; loads of any other version are rejected
/// with [`CkptError::VersionSkew`] (a silently-migrated snapshot could
/// resume a solve into nonsense).
pub const CKPT_VERSION: u64 = 1;

/// Format tag distinguishing a checkpoint from other JSON artifacts.
pub const CKPT_FORMAT: &str = "chase-ckpt";

/// Typed failures loading or applying a checkpoint. Adversarial inputs
/// (truncated file, flipped payload digit, foreign version) must each land
/// in their own variant — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Malformed or truncated JSON.
    Parse { detail: String },
    /// Parsed fine but is not a checkpoint (wrong or missing format tag).
    NotCkpt { found: String },
    /// A different format version (no silent migration).
    VersionSkew { found: u64, expected: u64 },
    /// The FNV-1a checksum of the canonical snapshot body does not match
    /// the recorded one: the payload was altered after writing.
    ChecksumMismatch { found: u64, expected: u64 },
    /// A field is missing, malformed, or inconsistent with its siblings.
    Field { field: &'static str, detail: String },
    /// The snapshot is valid but belongs to a different problem (size,
    /// subspace, scalar or seed mismatch) and must not be resumed from.
    ProblemMismatch { detail: String },
    /// Filesystem failure reading or writing.
    Io { detail: String },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Parse { detail } => write!(f, "ckpt: malformed JSON: {detail}"),
            CkptError::NotCkpt { found } => {
                write!(f, "ckpt: not a checkpoint (format tag '{found}')")
            }
            CkptError::VersionSkew { found, expected } => {
                write!(f, "ckpt: version {found} but this build reads {expected}")
            }
            CkptError::ChecksumMismatch { found, expected } => write!(
                f,
                "ckpt: checksum mismatch (file says {found:#018x}, body hashes to {expected:#018x})"
            ),
            CkptError::Field { field, detail } => write!(f, "ckpt: field '{field}': {detail}"),
            CkptError::ProblemMismatch { detail } => {
                write!(f, "ckpt: belongs to a different problem: {detail}")
            }
            CkptError::Io { detail } => write!(f, "ckpt: {detail}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// FNV-1a over bytes (same constants as the plan DB's content hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One solver snapshot, scalar-agnostic: every float is an `f64` bit
/// pattern (`f32` payloads widen exactly on save and narrow exactly on
/// restore), the iterate is split into real and imaginary planes (the
/// imaginary plane is empty for real scalars).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Outer iteration the snapshot was taken *after* (resume starts at
    /// `iter + 1`).
    pub iter: usize,
    /// Locked (converged, deflated) columns at save time.
    pub locked: usize,
    /// Global problem size `N`.
    pub n: usize,
    /// Wanted eigenpairs.
    pub nev: usize,
    /// Subspace width `ne = nev + nex`.
    pub ne: usize,
    /// Scalar tag: `f64`/`c64`/`f32`/`c32`.
    pub scalar: String,
    /// The solve's RNG seed (identity check: a snapshot from a different
    /// matgen/start seed must not silently resume this problem).
    pub seed: u64,
    /// Refined spectral bounds (`mu_1`, `mu_ne`, `b_sup`) as f64 bits.
    pub bounds_bits: [u64; 3],
    /// Ritz values (length `ne`), f64 bits.
    pub ritzv_bits: Vec<u64>,
    /// Residuals (length `ne`), f64 bits.
    pub resd_bits: Vec<u64>,
    /// Chebyshev degrees (length `ne`).
    pub degs: Vec<u64>,
    /// Filter MatVecs accumulated before the snapshot.
    pub matvecs: u64,
    /// Demoted-precision MatVecs accumulated before the snapshot.
    pub lowprec_matvecs: u64,
    /// Real plane of the global `N x ne` iterate, column-major, f64 bits.
    pub c_re_bits: Vec<u64>,
    /// Imaginary plane; empty for real scalars.
    pub c_im_bits: Vec<u64>,
}

fn hex(v: u64) -> String {
    format!("{v:016x}")
}

fn hex_arr(vs: &[u64]) -> String {
    let items: Vec<String> = vs.iter().map(|&v| format!("\"{}\"", hex(v))).collect();
    format!("[{}]", items.join(","))
}

fn parse_hex(s: &str, field: &'static str) -> Result<u64, CkptError> {
    u64::from_str_radix(s, 16).map_err(|e| CkptError::Field {
        field,
        detail: format!("bad hex '{s}': {e}"),
    })
}

fn hex_field(v: &Json, field: &'static str) -> Result<u64, CkptError> {
    let s = v.get(field).and_then(Json::as_str).ok_or(CkptError::Field {
        field,
        detail: "missing or not a hex string".into(),
    })?;
    parse_hex(s, field)
}

fn hex_arr_field(v: &Json, field: &'static str) -> Result<Vec<u64>, CkptError> {
    let arr = v.get(field).and_then(Json::as_arr).ok_or(CkptError::Field {
        field,
        detail: "missing or not an array".into(),
    })?;
    arr.iter()
        .map(|e| {
            e.as_str()
                .ok_or(CkptError::Field {
                    field,
                    detail: "element is not a hex string".into(),
                })
                .and_then(|s| parse_hex(s, field))
        })
        .collect()
}

fn u64_field(v: &Json, field: &'static str) -> Result<u64, CkptError> {
    v.get(field).and_then(Json::as_u64).ok_or(CkptError::Field {
        field,
        detail: "missing or not a non-negative integer".into(),
    })
}

fn u64_arr_field(v: &Json, field: &'static str) -> Result<Vec<u64>, CkptError> {
    let arr = v.get(field).and_then(Json::as_arr).ok_or(CkptError::Field {
        field,
        detail: "missing or not an array".into(),
    })?;
    arr.iter()
        .map(|e| {
            e.as_u64().ok_or(CkptError::Field {
                field,
                detail: "element is not a non-negative integer".into(),
            })
        })
        .collect()
}

impl Snapshot {
    /// The scalar tag this build writes for `T`.
    pub fn scalar_tag<T: Scalar>() -> &'static str {
        match (T::IS_COMPLEX, std::mem::size_of::<T::Real>()) {
            (false, 8) => "f64",
            (true, 8) => "c64",
            (false, 4) => "f32",
            (true, 4) => "c32",
            _ => "unknown",
        }
    }

    /// Build a snapshot from solver state. `c_global` is the assembled
    /// `N x ne` iterate (identical on every rank at save time).
    #[allow(clippy::too_many_arguments)]
    pub fn capture<T: Scalar>(
        iter: usize,
        locked: usize,
        nev: usize,
        seed: u64,
        bounds: &SpectralBounds<T::Real>,
        ritzv: &[T::Real],
        resd: &[T::Real],
        degs: &[usize],
        matvecs: u64,
        lowprec_matvecs: u64,
        c_global: &Matrix<T>,
    ) -> Self {
        let ne = ritzv.len();
        let n = c_global.rows();
        let mut c_re_bits = Vec::with_capacity(n * ne);
        let mut c_im_bits = if T::IS_COMPLEX {
            Vec::with_capacity(n * ne)
        } else {
            Vec::new()
        };
        for j in 0..ne {
            for &v in c_global.col(j) {
                c_re_bits.push(v.re().to_f64().to_bits());
                if T::IS_COMPLEX {
                    c_im_bits.push(v.im().to_f64().to_bits());
                }
            }
        }
        Self {
            iter,
            locked,
            n,
            nev,
            ne,
            scalar: Self::scalar_tag::<T>().to_string(),
            seed,
            bounds_bits: [
                bounds.mu_1.to_f64().to_bits(),
                bounds.mu_ne.to_f64().to_bits(),
                bounds.b_sup.to_f64().to_bits(),
            ],
            ritzv_bits: ritzv.iter().map(|r| r.to_f64().to_bits()).collect(),
            resd_bits: resd.iter().map(|r| r.to_f64().to_bits()).collect(),
            degs: degs.iter().map(|&d| d as u64).collect(),
            matvecs,
            lowprec_matvecs,
            c_re_bits,
            c_im_bits,
        }
    }

    /// Reject a snapshot that does not belong to this solve.
    pub fn check_problem<T: Scalar>(
        &self,
        n: usize,
        nev: usize,
        ne: usize,
        seed: u64,
    ) -> Result<(), CkptError> {
        let tag = Self::scalar_tag::<T>();
        if self.n != n || self.nev != nev || self.ne != ne {
            return Err(CkptError::ProblemMismatch {
                detail: format!(
                    "snapshot is n={} nev={} ne={}, solve is n={n} nev={nev} ne={ne}",
                    self.n, self.nev, self.ne
                ),
            });
        }
        if self.scalar != tag {
            return Err(CkptError::ProblemMismatch {
                detail: format!("snapshot scalar {} vs solve scalar {tag}", self.scalar),
            });
        }
        if self.seed != seed {
            return Err(CkptError::ProblemMismatch {
                detail: format!("snapshot seed {:#x} vs solve seed {seed:#x}", self.seed),
            });
        }
        Ok(())
    }

    /// Spectral bounds restored to the solve's real type (exact: the bits
    /// were widened from that type on capture).
    pub fn bounds<R: RealScalar>(&self) -> SpectralBounds<R> {
        SpectralBounds {
            mu_1: R::from_f64_r(f64::from_bits(self.bounds_bits[0])),
            mu_ne: R::from_f64_r(f64::from_bits(self.bounds_bits[1])),
            b_sup: R::from_f64_r(f64::from_bits(self.bounds_bits[2])),
        }
    }

    /// Rebuild the global `N x ne` iterate.
    pub fn c_global<T: Scalar>(&self) -> Result<Matrix<T>, CkptError> {
        let want = self.n * self.ne;
        if self.c_re_bits.len() != want {
            return Err(CkptError::Field {
                field: "c_re",
                detail: format!("{} elements, expected {want}", self.c_re_bits.len()),
            });
        }
        let complex = !self.c_im_bits.is_empty();
        if complex && self.c_im_bits.len() != want {
            return Err(CkptError::Field {
                field: "c_im",
                detail: format!("{} elements, expected {want}", self.c_im_bits.len()),
            });
        }
        let mut m = Matrix::<T>::zeros(self.n, self.ne);
        for j in 0..self.ne {
            for i in 0..self.n {
                let k = j * self.n + i;
                let re = T::Real::from_f64_r(f64::from_bits(self.c_re_bits[k]));
                let im = if complex {
                    T::Real::from_f64_r(f64::from_bits(self.c_im_bits[k]))
                } else {
                    <T::Real as Scalar>::zero()
                };
                m[(i, j)] = T::from_re_im(re, im);
            }
        }
        Ok(m)
    }

    /// Canonical JSON rendering of the snapshot body (the checksum input).
    fn body_json(&self) -> String {
        format!(
            concat!(
                "{{\"iter\":{},\"locked\":{},\"n\":{},\"nev\":{},\"ne\":{},",
                "\"scalar\":\"{}\",\"seed\":\"{}\",\"bounds\":{},",
                "\"ritzv\":{},\"resd\":{},\"degs\":[{}],",
                "\"matvecs\":{},\"lowprec_matvecs\":{},",
                "\"c_re\":{},\"c_im\":{}}}"
            ),
            self.iter,
            self.locked,
            self.n,
            self.nev,
            self.ne,
            json::escape(&self.scalar),
            hex(self.seed),
            hex_arr(&self.bounds_bits),
            hex_arr(&self.ritzv_bits),
            hex_arr(&self.resd_bits),
            self.degs
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(","),
            self.matvecs,
            self.lowprec_matvecs,
            hex_arr(&self.c_re_bits),
            hex_arr(&self.c_im_bits),
        )
    }

    /// Full canonical file rendering: format tag, version, FNV-1a checksum
    /// of the canonical body, then the body.
    pub fn emit(&self) -> String {
        let body = self.body_json();
        let sum = fnv1a(body.as_bytes());
        format!(
            "{{\"format\":\"{CKPT_FORMAT}\",\"version\":{CKPT_VERSION},\"checksum\":\"{}\",\"snapshot\":{body}}}\n",
            hex(sum)
        )
    }

    /// Strict parse with typed failures for every corruption class.
    pub fn parse(s: &str) -> Result<Self, CkptError> {
        let v = json::parse(s).map_err(|detail| CkptError::Parse { detail })?;
        let format = v.get("format").and_then(Json::as_str).unwrap_or("");
        if format != CKPT_FORMAT {
            return Err(CkptError::NotCkpt {
                found: format.to_string(),
            });
        }
        let version = v.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != CKPT_VERSION {
            return Err(CkptError::VersionSkew {
                found: version,
                expected: CKPT_VERSION,
            });
        }
        let recorded = hex_field(&v, "checksum")?;
        let snap_v = v.get("snapshot").ok_or(CkptError::Field {
            field: "snapshot",
            detail: "missing".into(),
        })?;
        let snap = Self {
            iter: u64_field(snap_v, "iter")? as usize,
            locked: u64_field(snap_v, "locked")? as usize,
            n: u64_field(snap_v, "n")? as usize,
            nev: u64_field(snap_v, "nev")? as usize,
            ne: u64_field(snap_v, "ne")? as usize,
            scalar: snap_v
                .get("scalar")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(CkptError::Field {
                    field: "scalar",
                    detail: "missing or not a string".into(),
                })?,
            seed: hex_field(snap_v, "seed")?,
            bounds_bits: {
                let b = hex_arr_field(snap_v, "bounds")?;
                b.try_into().map_err(|b: Vec<u64>| CkptError::Field {
                    field: "bounds",
                    detail: format!("{} elements, expected 3", b.len()),
                })?
            },
            ritzv_bits: hex_arr_field(snap_v, "ritzv")?,
            resd_bits: hex_arr_field(snap_v, "resd")?,
            degs: u64_arr_field(snap_v, "degs")?,
            matvecs: u64_field(snap_v, "matvecs")?,
            lowprec_matvecs: u64_field(snap_v, "lowprec_matvecs")?,
            c_re_bits: hex_arr_field(snap_v, "c_re")?,
            c_im_bits: hex_arr_field(snap_v, "c_im")?,
        };
        // The canonical re-rendering of what we parsed must hash to the
        // recorded checksum: any altered payload digit re-renders
        // differently and is caught here.
        let actual = fnv1a(snap.body_json().as_bytes());
        if actual != recorded {
            return Err(CkptError::ChecksumMismatch {
                found: recorded,
                expected: actual,
            });
        }
        if snap.ritzv_bits.len() != snap.ne
            || snap.resd_bits.len() != snap.ne
            || snap.degs.len() != snap.ne
        {
            return Err(CkptError::Field {
                field: "ritzv",
                detail: format!(
                    "per-column arrays must have ne={} elements (got {}/{}/{})",
                    snap.ne,
                    snap.ritzv_bits.len(),
                    snap.resd_bits.len(),
                    snap.degs.len()
                ),
            });
        }
        Ok(snap)
    }

    /// Canonical file name for this snapshot inside a checkpoint directory.
    pub fn file_name(&self) -> String {
        format!("ckpt-{:06}.json", self.iter)
    }

    /// Write atomically (tmp + rename) into `dir`, creating it if needed.
    /// Single-writer: the caller gates this to world rank 0.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<PathBuf, CkptError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| CkptError::Io {
            detail: format!("{}: {e}", dir.display()),
        })?;
        let path = dir.join(self.file_name());
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.emit()).map_err(|e| CkptError::Io {
            detail: format!("{}: {e}", tmp.display()),
        })?;
        std::fs::rename(&tmp, &path).map_err(|e| CkptError::Io {
            detail: format!("{}: {e}", path.display()),
        })?;
        Ok(path)
    }

    /// Load one checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CkptError> {
        let path = path.as_ref();
        let s = std::fs::read_to_string(path).map_err(|e| CkptError::Io {
            detail: format!("{}: {e}", path.display()),
        })?;
        Self::parse(&s)
    }
}

/// Scan `dir` for `ckpt-*.json` files and return the *latest valid*
/// snapshot (highest iteration that parses and checksums), together with
/// the typed rejections of every newer file that failed — corrupt
/// checkpoints degrade to the previous one, never to a panic. `Ok(None)`
/// when the directory is missing/empty or nothing valid remains.
pub fn load_latest(dir: impl AsRef<Path>) -> Result<Option<Snapshot>, Vec<(PathBuf, CkptError)>> {
    let dir = dir.as_ref();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(None),
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
        })
        .collect();
    // Zero-padded iteration numbers sort lexicographically; newest last.
    files.sort();
    let mut rejected = Vec::new();
    for p in files.into_iter().rev() {
        match Snapshot::load(&p) {
            Ok(s) => return Ok(Some(s)),
            Err(e) => rejected.push((p, e)),
        }
    }
    if rejected.is_empty() {
        Ok(None)
    } else {
        Err(rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_linalg::C64;

    fn sample<T: Scalar>(iter: usize) -> Snapshot {
        let n = 6;
        let ne = 3;
        let mut c = Matrix::<T>::zeros(n, ne);
        for j in 0..ne {
            for i in 0..n {
                c[(i, j)] = T::from_re_im(
                    T::Real::from_f64_r((i + 10 * j) as f64 * 0.25),
                    T::Real::from_f64_r(if T::IS_COMPLEX { -1.5 } else { 0.0 }),
                );
            }
        }
        Snapshot::capture::<T>(
            iter,
            1,
            2,
            0xC4A53,
            &SpectralBounds {
                mu_1: T::Real::from_f64_r(-2.0),
                mu_ne: T::Real::from_f64_r(0.5),
                b_sup: T::Real::from_f64_r(3.0),
            },
            &[
                T::Real::from_f64_r(-1.9),
                T::Real::from_f64_r(-1.0),
                T::Real::from_f64_r(0.1),
            ],
            &[
                T::Real::from_f64_r(1e-12),
                T::Real::from_f64_r(3e-7),
                T::Real::from_f64_r(0.2),
            ],
            &[0, 14, 20],
            1234,
            56,
            &c,
        )
    }

    #[test]
    fn roundtrip_identity_real_and_complex() {
        for snap in [sample::<f64>(4), sample::<C64>(7)] {
            let parsed = Snapshot::parse(&snap.emit()).expect("roundtrip");
            assert_eq!(parsed, snap);
        }
        // And the iterate itself survives bitwise.
        let snap = sample::<C64>(2);
        let c = snap.c_global::<C64>().unwrap();
        assert_eq!(c[(3, 1)], C64::new(13.0 * 0.25, -1.5));
    }

    #[test]
    fn truncated_file_is_a_typed_parse_error() {
        let full = sample::<f64>(3).emit();
        let cut = &full[..full.len() / 2];
        assert!(matches!(
            Snapshot::parse(cut),
            Err(CkptError::Parse { .. } | CkptError::Field { .. })
        ));
    }

    #[test]
    fn flipped_payload_digit_is_a_checksum_mismatch() {
        let full = sample::<f64>(3).emit();
        // Flip one hex digit inside the ritzv payload (keeps valid JSON).
        let at = full.find("\"ritzv\":[\"").expect("ritzv field") + "\"ritzv\":[\"".len();
        let orig = full.as_bytes()[at] as char;
        let flip = if orig == '0' { '1' } else { '0' };
        let mut bytes = full.into_bytes();
        bytes[at] = flip as u8;
        let tampered = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            Snapshot::parse(&tampered),
            Err(CkptError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_skew_is_typed() {
        let skewed = sample::<f64>(3)
            .emit()
            .replace("\"version\":1,", "\"version\":99,");
        assert_eq!(
            Snapshot::parse(&skewed),
            Err(CkptError::VersionSkew {
                found: 99,
                expected: CKPT_VERSION
            })
        );
    }

    #[test]
    fn wrong_format_tag_is_typed() {
        assert!(matches!(
            Snapshot::parse("{\"format\":\"chase-plan-db\",\"version\":1}"),
            Err(CkptError::NotCkpt { .. })
        ));
    }

    #[test]
    fn problem_mismatch_is_typed() {
        let snap = sample::<f64>(3);
        assert!(snap.check_problem::<f64>(6, 2, 3, 0xC4A53).is_ok());
        assert!(matches!(
            snap.check_problem::<f64>(8, 2, 3, 0xC4A53),
            Err(CkptError::ProblemMismatch { .. })
        ));
        assert!(matches!(
            snap.check_problem::<C64>(6, 2, 3, 0xC4A53),
            Err(CkptError::ProblemMismatch { .. })
        ));
        assert!(matches!(
            snap.check_problem::<f64>(6, 2, 3, 99),
            Err(CkptError::ProblemMismatch { .. })
        ));
    }

    #[test]
    fn load_latest_skips_corrupt_newer_files() {
        let dir = std::env::temp_dir().join(format!("chase-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(load_latest(&dir), Ok(None));

        let old = sample::<f64>(2);
        let newer = sample::<f64>(5);
        old.save(&dir).unwrap();
        let newer_path = newer.save(&dir).unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap().iter, 5);

        // Truncate the newest: the scan must fall back to iter 2.
        std::fs::write(&newer_path, &newer.emit()[..100]).unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap().iter, 2);

        // Corrupt both: typed rejections, no panic, no snapshot.
        let old_path = dir.join(old.file_name());
        std::fs::write(&old_path, "{\"format\":\"chase-ckpt\",\"version\":99}").unwrap();
        let rejected = load_latest(&dir).unwrap_err();
        assert_eq!(rejected.len(), 2);
        assert!(rejected
            .iter()
            .any(|(_, e)| matches!(e, CkptError::VersionSkew { found: 99, .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
