//! The legacy ChASE v1.2 layout — ChASE(LMS), "Limited Memory and Scaling".
//!
//! Kept as the baseline of the paper's evaluation (Sections 2.2–2.3): the
//! Filter uses the same distributed HEMM, but QR, Rayleigh–Ritz and
//! Residuals are executed *redundantly* on every rank after collecting the
//! distributed vector block with broadcasts — requiring two extra
//! `O(N (nev+nex))` buffers per rank and a message count that doubles every
//! time the rank count quadruples. Those are exactly the bottlenecks the
//! novel scheme removes.

use crate::degrees::{degree_sort_permutation, optimize_degrees};
use crate::filter::{chebyshev_filter, FilterBounds};
use crate::layout::{DistHerm, MemoryReport, RowDist};
use crate::params::Params;
use crate::qr::QrVariant;
use crate::result::{ChaseResult, IterStats};
use crate::solver::{estimate_bounds_dist, permute_cols};
use chase_comm::{RankCtx, Reduce, Region};
use chase_device::{Backend, Device};
use chase_linalg::{Matrix, Op, RealScalar, Scalar};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn permute_vec<V: Copy>(v: &mut [V], perm: &[usize]) {
    let old: Vec<V> = v.to_vec();
    for (k, &src) in perm.iter().enumerate() {
        v[k] = old[src];
    }
}

/// Solve with the v1.2 legacy scheme. Functionally equivalent to
/// [`crate::solve_dist`]; the execution/communication profile matches the
/// old layout. Always uses (redundant) Householder QR, as v1.2 did.
pub fn solve_lms<T: Scalar + Reduce>(
    ctx: &RankCtx,
    h: DistHerm<T>,
    params: &Params,
    initial: Option<&Matrix<T>>,
) -> ChaseResult<T>
where
    T::Real: Reduce,
{
    params.validate(h.n);
    let dev = Device::with_collectives(
        ctx,
        Backend::Lms,
        params.collective,
        chase_device::Topology::juwels_booster(),
    );
    let ne = params.ne();
    let nev = params.nev;
    let n = h.n;
    let mut h = h;
    let c_dist = RowDist::c_layout(n, ctx.shape, h.dist);

    // Distributed C block plus the two redundant full-size buffers that
    // define the LMS memory profile.
    let c_global0 = match initial {
        Some(v0) => v0.clone(),
        None => {
            let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
            Matrix::random(n, ne, &mut rng)
        }
    };
    let mut c = c_global0.select_rows(h.row_set.iter());
    let mut b = Matrix::<T>::zeros(h.n_c(), ne);
    // Redundant buffers (the memory bottleneck of Section 2.3).
    let mut full_c;
    let mut full_w;

    let bounds = estimate_bounds_dist(&dev, &h, ne, params);
    let b_sup = bounds.b_sup;
    let mut mu_1 = bounds.mu_1;
    let mut mu_ne = bounds.mu_ne;
    let norm_h = mu_1.abs_r().max_r(b_sup.abs_r());

    let mut ritzv = vec![mu_1; ne];
    let mut resd = vec![<T::Real as Scalar>::one(); ne];
    let init_deg = params.deg + params.deg % 2;
    let mut degs = vec![init_deg; ne];
    let mut locked = 0usize;

    let mut stats = Vec::new();
    let mut total_matvecs = 0u64;
    let mut converged = false;
    let mut iterations = 0;

    for iter in 1..=params.max_iter {
        iterations = iter;
        let half = T::Real::from_f64_r(0.5);
        let c_center = (b_sup + mu_ne) * half;
        let e_half = (b_sup - mu_ne) * half;

        if iter > 1 {
            if params.optimize_degrees {
                let new_degs = optimize_degrees(
                    &resd[locked..]
                        .iter()
                        .map(|r| r.to_f64())
                        .collect::<Vec<_>>(),
                    &ritzv[locked..]
                        .iter()
                        .map(|r| r.to_f64())
                        .collect::<Vec<_>>(),
                    c_center.to_f64(),
                    e_half.to_f64(),
                    params.tol * norm_h.to_f64(),
                    params.max_deg,
                );
                degs[locked..].copy_from_slice(&new_degs);
            }
            let perm = degree_sort_permutation(&degs[locked..]);
            permute_cols(&mut c, locked, &perm);
            permute_vec(&mut ritzv[locked..], &perm);
            permute_vec(&mut resd[locked..], &perm);
            permute_vec(&mut degs[locked..], &perm);
        }

        // --- Filter: identical distributed implementation ---
        let fb = FilterBounds {
            c: c_center,
            e: e_half,
            mu_1,
        };
        let degrees: Vec<usize> = degs[locked..].to_vec();
        let mv = chebyshev_filter(&dev, ctx, &mut h, &mut c, &mut b, locked, &degrees, fb);
        total_matvecs += mv;

        // --- QR: gather + redundant Householder on every rank ---
        dev.set_region(Region::Qr);
        {
            let gathered = dev.allgather(&ctx.col_comm, c.as_slice());
            full_c = c_dist.assemble(&gathered, ne);
        }
        full_c = dev.hhqr_q(&full_c);
        c = full_c.select_rows(h.row_set.iter());

        // --- Rayleigh-Ritz: W = H C distributed, then redundant A and
        //     redundant back-transform on gathered buffers ---
        dev.set_region(Region::RayleighRitz);
        let act = ne - locked;
        crate::hemm::hemm_c_to_b(&dev, ctx, &h, &c, &mut b, locked, act, T::one(), T::zero());
        {
            let gathered = dev.allgather(&ctx.row_comm, b.as_slice());
            let b_dist = RowDist::b_layout(n, ctx.shape, h.dist);
            full_w = b_dist.assemble(&gathered, ne);
        }
        let mut a = Matrix::<T>::zeros(act, act);
        dev.gemm(
            Op::ConjTrans,
            Op::None,
            T::one(),
            full_c.cols_ref(locked..ne),
            full_w.cols_ref(locked..ne),
            T::zero(),
            a.as_mut(),
        );
        let (vals, y) = dev.heevd(&a).expect("LMS Rayleigh-Ritz failed");
        // Redundant back-transform on the full buffer.
        let active = full_c.copy_cols(locked..ne);
        dev.gemm(
            Op::None,
            Op::None,
            T::one(),
            active.as_ref(),
            y.as_ref(),
            T::zero(),
            full_c.cols_mut(locked..ne),
        );
        c = full_c.select_rows(h.row_set.iter());
        ritzv[locked..].copy_from_slice(&vals);

        // --- Residuals: redundant on gathered buffers ---
        dev.set_region(Region::Residuals);
        crate::hemm::hemm_c_to_b(&dev, ctx, &h, &c, &mut b, locked, act, T::one(), T::zero());
        {
            let gathered = dev.allgather(&ctx.row_comm, b.as_slice());
            let b_dist = RowDist::b_layout(n, ctx.shape, h.dist);
            full_w = b_dist.assemble(&gathered, ne);
        }
        dev.blas1::<T>(n * act * 2);
        for k in 0..act {
            let j = locked + k;
            let lambda = ritzv[j];
            let cj = full_c.col(j).to_vec();
            let wj = full_w.col_mut(j);
            for (x, y) in wj.iter_mut().zip(&cj) {
                *x -= y.scale(lambda);
            }
            resd[j] = chase_linalg::blas1::nrm2(wj);
        }

        // --- Locking: longest converged prefix in ascending Ritz order ---
        let tol = T::Real::from_f64_r(params.tol) * norm_h;
        let before = locked;
        while locked < ne && resd[locked] < tol {
            locked += 1;
        }

        let active_res = &resd[locked.min(ne - 1)..];
        stats.push(IterStats {
            low_precision: false,
            iter,
            est_cond: f64::NAN, // v1.2 has no condition estimator
            true_cond: None,
            qr_variant: QrVariant::Householder,
            matvecs: mv,
            new_locked: locked - before,
            locked,
            min_res: active_res
                .iter()
                .fold(f64::INFINITY, |m, r| m.min(r.to_f64())),
            max_res: active_res.iter().fold(0.0f64, |m, r| m.max(r.to_f64())),
            max_degree: *degs[locked.min(ne - 1)..].iter().max().unwrap_or(&0),
        });

        mu_1 = ritzv.iter().copied().fold(ritzv[0], |m, v| m.min_r(v));
        mu_ne = ritzv.iter().copied().fold(ritzv[0], |m, v| m.max_r(v));

        if locked >= nev {
            converged = true;
            break;
        }
    }

    let take = locked.max(nev).min(ne);
    let mut order: Vec<usize> = (0..take).collect();
    order.sort_by(|&a, &b| ritzv[a].partial_cmp(&ritzv[b]).unwrap());
    permute_cols(&mut c, 0, &order);
    let ritz_sorted: Vec<T::Real> = order.iter().map(|&i| ritzv[i]).collect();
    let res_sorted: Vec<T::Real> = order.iter().map(|&i| resd[i]).collect();

    ChaseResult {
        lowprec_matvecs: 0,
        eigenvalues: ritz_sorted[..nev].to_vec(),
        residuals: res_sorted[..nev].to_vec(),
        eigenvectors_local: c.copy_cols(0..nev),
        rows: h.row_set.clone(),
        n,
        iterations,
        matvecs: total_matvecs,
        converged,
        stats,
        norm_h: norm_h.to_f64(),
        bounds: chase_linalg::SpectralBounds { mu_1, mu_ne, b_sup },
        warm_started: false,
        recovery: crate::result::RecoveryLog::default(),
        plan: None,
    }
}

/// Memory report for the LMS layout (includes the redundant buffers of
/// Section 2.3 that Eq. (2) eliminates).
pub fn lms_memory_report<T: Scalar>(n: usize, ne: usize, h: &DistHerm<T>) -> MemoryReport {
    let s = std::mem::size_of::<T>();
    MemoryReport {
        h_bytes: h.local.bytes(),
        c_bytes: h.n_r() * ne * s,
        b_bytes: h.n_c() * ne * s,
        a_bytes: ne * ne * s,
        redundant_bytes: 2 * n * ne * s,
    }
}
