//! Solver parameters (the knobs of Algorithms 1–2).

use chase_device::CollectiveAlgo;

/// Strategy for choosing the QR factorization each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QrStrategy {
    /// The paper's heuristic (Algorithm 4): pick by estimated condition
    /// number — shifted CholeskyQR2 above 1e8, CholeskyQR1 below 20,
    /// CholeskyQR2 otherwise, Householder QR as the corner-case fallback.
    Auto,
    /// Always use (ScaLAPACK-style) Householder QR — the Table 2 baseline.
    AlwaysHouseholder,
    /// Always CholeskyQR2 (ablation).
    AlwaysCholeskyQr2,
    /// Always single-pass CholeskyQR (ablation; may lose orthogonality).
    AlwaysCholeskyQr1,
}

/// Arithmetic precision the Chebyshev filter runs in.
///
/// Everything outside the filter (QR, Rayleigh–Ritz, residuals, locking)
/// always runs at the solver's native precision `T`; the filter only needs
/// to *separate* the subspace, not resolve it, which is what makes the
/// demoted path safe (Winkelmann et al., TOMS 2019, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrecisionMode {
    /// Every filter call runs in `T` (the historic behavior).
    #[default]
    Full,
    /// Filter calls run in the demoted type `T::Lo` (`f64→f32`, `C64→C32`)
    /// while residuals stay far from the single-precision floor
    /// (`~50·eps_f32·‖H‖`); the solver escalates to full precision — once,
    /// stickily, world-agreed — as convergence approaches the floor, or
    /// immediately when a low filter output goes non-finite (the precision
    /// rung of the recovery ladder). No-op for natively 32-bit scalars.
    Mixed,
    /// Defer the choice to a resolved [`crate::SolvePlan`]
    /// ([`Params::apply_plan`] replaces `Auto` with the plan's concrete
    /// mode). A solve entered with `Auto` still unresolved runs `Full` —
    /// the conservative historic behavior.
    Auto,
}

impl PrecisionMode {
    pub fn name(self) -> &'static str {
        match self {
            PrecisionMode::Full => "full",
            PrecisionMode::Mixed => "mixed",
            PrecisionMode::Auto => "auto",
        }
    }
}

impl std::str::FromStr for PrecisionMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "full" => Ok(PrecisionMode::Full),
            "mixed" => Ok(PrecisionMode::Mixed),
            "auto" => Ok(PrecisionMode::Auto),
            other => Err(format!("unknown precision '{other}' (full|mixed|auto)")),
        }
    }
}

/// ChASE configuration.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of wanted (lowest) eigenpairs.
    pub nev: usize,
    /// Extra search directions; the subspace has `ne = nev + nex` columns.
    pub nex: usize,
    /// Residual threshold for deflation & locking (the paper fixes 1e-10).
    pub tol: f64,
    /// Initial Chebyshev degree (paper: 20).
    pub deg: usize,
    /// Cap on optimized degrees (paper: 36, "to avoid the matrix of
    /// vectors becoming too ill-conditioned").
    pub max_deg: usize,
    /// Enable per-vector degree optimization (paper: always on unless
    /// stated otherwise).
    pub optimize_degrees: bool,
    /// Maximum outer iterations before giving up.
    pub max_iter: usize,
    /// Lanczos steps per run for the spectral estimator.
    pub lanczos_steps: usize,
    /// Number of independent Lanczos runs for the DoS estimate.
    pub lanczos_runs: usize,
    /// QR variant selection.
    pub qr: QrStrategy,
    /// Also compute the *exact* condition number of the filtered block each
    /// iteration (expensive; drives Fig. 1).
    pub track_true_cond: bool,
    /// Collective execution path: the flat rendezvous reference, a forced
    /// topology-aware hop schedule, or the NCCL-style tuner. Results are
    /// bitwise identical across all settings; only the priced hop structure
    /// changes.
    pub collective: CollectiveAlgo,
    /// Run the Chebyshev filter on the overlapped pipeline: panel-chunked
    /// HEMMs double-buffered against nonblocking allreduces. Bitwise
    /// identical to the flat filter.
    pub overlap: bool,
    /// Panel width (columns) for the overlapped filter; `None` lets the
    /// topology tuner pick per step. Ignored unless `overlap` is set.
    pub overlap_panel: Option<usize>,
    /// Seed for the random starting block.
    pub seed: u64,
    /// Fault-injection campaign (the parsed `--inject` spec). `None` runs
    /// clean; `Some` compiles a per-rank `FaultPlan` and wires it into the
    /// communicators and the device layer.
    pub inject: Option<chase_faults::FaultSpec>,
    /// Run the detection/recovery guard layer (finite checks, residual
    /// regression, re-filter + rollback). On by default; the guards are
    /// collective-free on the happy path except one scalar agreement per
    /// iteration.
    pub guards: bool,
    /// How many times one iteration may restore + re-filter poisoned
    /// columns before giving up with `UnrecoverableNonFinite`.
    pub max_refilter: usize,
    /// Override the nonblocking-collective wait timeout (ms) on the rank's
    /// communicators; `None` keeps [`chase_comm::DEFAULT_WAIT_TIMEOUT_MS`].
    pub wait_timeout_ms: Option<u64>,
    /// Filter arithmetic precision (see [`PrecisionMode`]).
    pub precision: PrecisionMode,
    /// Directory for periodic solver checkpoints; `None` disables them.
    pub checkpoint_dir: Option<String>,
    /// Write a checkpoint every this many outer iterations (0 means only
    /// when a crash-recovery driver requests one on demand).
    pub checkpoint_every: usize,
    /// Resolved solve plan, set by [`Params::apply_plan`]. Pure provenance:
    /// the knobs above are already merged; the solver copies it onto
    /// [`crate::ChaseResult::plan`].
    pub plan: Option<crate::plan::SolvePlan>,
}

impl Params {
    /// Defaults matching the paper's experimental setup.
    pub fn new(nev: usize, nex: usize) -> Self {
        Self {
            nev,
            nex,
            tol: 1e-10,
            deg: 20,
            max_deg: 36,
            optimize_degrees: true,
            max_iter: 60,
            lanczos_steps: 25,
            lanczos_runs: 4,
            qr: QrStrategy::Auto,
            track_true_cond: false,
            collective: CollectiveAlgo::Flat,
            overlap: false,
            overlap_panel: None,
            seed: 0xC4A53,
            inject: None,
            guards: true,
            max_refilter: 2,
            wait_timeout_ms: None,
            precision: PrecisionMode::Full,
            checkpoint_dir: None,
            checkpoint_every: 0,
            plan: None,
        }
    }

    /// The filter execution strategy these parameters select.
    pub fn filter_exec(&self) -> crate::filter::FilterExec {
        if self.overlap {
            crate::filter::FilterExec::Pipelined {
                panel: self.overlap_panel,
            }
        } else {
            crate::filter::FilterExec::Flat
        }
    }

    /// Search-space width `ne = nev + nex`.
    pub fn ne(&self) -> usize {
        self.nev + self.nex
    }

    /// Validate against a problem size, reporting the first violation as a
    /// typed error (a bad workload entry must not abort a whole serve run).
    pub fn try_validate(&self, n: usize) -> Result<(), String> {
        if self.nev < 1 {
            return Err("nev must be at least 1".into());
        }
        if self.nex < 1 {
            return Err("nex must be at least 1 (deflation headroom)".into());
        }
        if self.ne() > n {
            return Err(format!(
                "search space ({}) exceeds problem size ({n})",
                self.ne()
            ));
        }
        if !(self.tol > 0.0 && self.tol.is_finite()) {
            return Err(format!(
                "tol must be a finite positive value, got {}",
                self.tol
            ));
        }
        if self.deg < 2 || self.max_deg < self.deg {
            return Err(format!(
                "need 2 <= deg <= max_deg, got deg {} max_deg {}",
                self.deg, self.max_deg
            ));
        }
        if self.max_iter < 1 {
            return Err("max_iter must be at least 1".into());
        }
        Ok(())
    }

    /// Validate against a problem size (panicking convenience wrapper).
    pub fn validate(&self, n: usize) {
        if let Err(e) = self.try_validate(n) {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = Params::new(100, 40);
        assert_eq!(p.tol, 1e-10);
        assert_eq!(p.deg, 20);
        assert_eq!(p.max_deg, 36);
        assert!(p.optimize_degrees);
        assert_eq!(p.ne(), 140);
    }

    #[test]
    #[should_panic(expected = "search space")]
    fn validate_rejects_oversized_subspace() {
        Params::new(100, 40).validate(120);
    }

    #[test]
    fn validate_accepts_sane() {
        Params::new(10, 5).validate(100);
    }
}
