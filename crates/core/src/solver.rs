//! The main ChASE iteration with the novel parallelization scheme
//! (Algorithm 2 of the paper).
//!
//! Per outer iteration: Chebyshev-filter the active columns of `C`
//! (C-layout), orthonormalize `C` with the flexible 1D-CAQR inside each
//! column communicator, redistribute `C2 -> B2`, form the Rayleigh–Ritz
//! quotient with one row-communicator allreduce, diagonalize it redundantly,
//! back-transform locally, compute residuals in B-layout, then deflate and
//! lock converged columns. The only replicated object is the `ne x ne`
//! quotient `A` — the `O(N ne)` redundancy of v1.2 is gone (Section 3.1).

use crate::ckpt::{CkptError, Snapshot};
use crate::condest::cond_est;
use crate::degrees::{degree_sort_permutation, optimize_degrees};
use crate::filter::{
    chebyshev_filter_mixed, chebyshev_filter_with, FilterBounds, FilterError, FilterExec,
};
use crate::hemm::{hemm_c_to_b, matvec_replicated};
use crate::layout::{DistHerm, MemoryReport, RowDist};
use crate::params::{Params, PrecisionMode};
use crate::qr::qr_ladder;
use crate::result::{
    ChaseError, ChaseErrorKind, ChaseResult, IterStats, RecoveryEventKind, RecoveryLog,
};
use crate::warm::WarmStart;
use chase_comm::{CommFaultHook, Reduce, Region};
use chase_device::{Backend, Device};
use chase_faults::FaultPlan;
use chase_linalg::{Matrix, Op, RealScalar, Scalar, SpectralBounds};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Relative `b_sup` inflation applied to cached warm-start bounds: a
/// perturbed Hamiltonian's spectrum may poke slightly past the previous
/// upper estimate, and the Chebyshev filter amplifies anything outside
/// `[mu_ne, b_sup]` — 1% of the spectral span is cheap insurance.
const WARM_BOUND_MARGIN: f64 = 0.01;

/// Swap two columns of a matrix.
#[allow(dead_code)]
pub(crate) fn swap_cols<T: Scalar>(m: &mut Matrix<T>, i: usize, j: usize) {
    if i == j {
        return;
    }
    let (a, b) = m.two_cols_mut(i, j);
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        std::mem::swap(x, y);
    }
}

/// Permute columns `offset..offset+perm.len()` of `m` so that new column `k`
/// is old column `offset + perm[k]`.
pub(crate) fn permute_cols<T: Scalar>(m: &mut Matrix<T>, offset: usize, perm: &[usize]) {
    let block = m.copy_cols(offset..offset + perm.len());
    for (k, &src) in perm.iter().enumerate() {
        m.col_mut(offset + k).copy_from_slice(block.col(src));
    }
}

fn permute_vec<V: Copy>(v: &mut [V], perm: &[usize]) {
    let old: Vec<V> = v.to_vec();
    for (k, &src) in perm.iter().enumerate() {
        v[k] = old[src];
    }
}

/// Distributed spectral-bound estimation (Algorithm 2, line 1): `runs`
/// Lanczos runs of `steps` iterations on the distributed operator, with a
/// DoS quantile for `mu_ne`. Identical output on every rank.
pub fn estimate_bounds_dist<T: Scalar + Reduce>(
    dev: &Device<'_>,
    h: &DistHerm<T>,
    ne: usize,
    params: &Params,
) -> SpectralBounds<T::Real> {
    dev.set_region(Region::Lanczos);
    let ctx = dev.ctx();
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0x1a9c205);
    chase_linalg::estimate_bounds::<T, _, _>(
        h.n,
        ne,
        params.lanczos_steps,
        params.lanczos_runs,
        |x, y| matvec_replicated(dev, ctx, h, x, y),
        &mut rng,
    )
}

/// Lightweight checkpoint of the locked eigenpairs: enough to roll the
/// converged work back after a detected corruption without replaying the
/// whole solve. Updated whenever new columns lock.
struct Checkpoint<T: Scalar> {
    locked: usize,
    /// Local rows of the locked columns (`n_r x locked`).
    c: Matrix<T>,
    ritzv: Vec<T::Real>,
    resd: Vec<T::Real>,
}

/// Estimated condition number of the filtered block above which the next
/// low-precision filter is considered at risk of f32 overflow; the mixed
/// policy escalates preemptively instead of waiting for the guard to catch
/// non-finite output.
const LO_COND_LIMIT: f64 = 1e30;

/// Multiple of the demoted type's epsilon defining the single-precision
/// residual floor. The theoretical floor is ~50 * eps_lo * ||H||, but the
/// degree-<=36 Chebyshev recurrence amplifies the demoted iterate's rounding
/// noise by about two further orders of magnitude before Rayleigh-Ritz sees
/// it, so the practical switch point sits at ~5e3 * eps_lo * ||H|| —
/// escalating there keeps every demoted iteration productive instead of
/// burning MatVecs against the noise floor.
const LO_FLOOR_EPS_MULT: f64 = 5.0e3;

/// Consecutive low-precision iterations allowed without a >30% residual
/// improvement before escalating anyway: the backstop for problems whose
/// filter amplification pushes the single-precision noise floor above the
/// eps-based estimate.
const LO_STALL_LIMIT: usize = 2;

/// Solver state for one rank.
pub struct Chase<'d, 'c, T: Scalar + Reduce>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    dev: &'d Device<'c>,
    params: Params,
    h: DistHerm<T>,
    c: Matrix<T>,
    c2: Matrix<T>,
    b: Matrix<T>,
    b2: Matrix<T>,
    ritzv: Vec<T::Real>,
    resd: Vec<T::Real>,
    degs: Vec<usize>,
    locked: usize,
    c_dist: RowDist,
    b_dist: RowDist,
    /// Cached spectral bounds from a warm start; when set the Lanczos
    /// estimation phase is skipped.
    warm_bounds: Option<SpectralBounds<T::Real>>,
    /// Demoted replica of the local `H` panel, built lazily the first time a
    /// mixed-precision filter call runs (never built in full mode).
    h_lo: Option<DistHerm<T::Lo>>,
    /// Sticky escalation flag of the mixed-precision policy: once true,
    /// every remaining filter call runs at full precision. A pure function
    /// of world-replicated state, so it flips identically on every rank.
    escalated: bool,
    /// Previous iteration's estimated condition number of the filtered
    /// block (drives preemptive escalation before an f32 overflow).
    prev_est_cond: f64,
    /// Max active residual seen at the previous mixed-mode decision point
    /// (stall detection).
    prev_low_max_res: f64,
    /// Consecutive decision points without meaningful residual improvement
    /// while running demoted.
    low_stall: usize,
    /// Outer iteration to resume *after* (0 for a fresh solve); set by
    /// [`Chase::apply_snapshot`]. The loop starts at `start_iter + 1`.
    start_iter: usize,
    /// MatVecs accumulated before the restored checkpoint was taken; folded
    /// into the result so elastic runs report true total work.
    base_matvecs: u64,
    /// Demoted-precision MatVecs accumulated before the checkpoint.
    base_lowprec_matvecs: u64,
    /// Recovery events that happened before this solve attempt (the
    /// crash→shrink→restore trail from the elastic driver); prepended to
    /// the attempt's own log so `ChaseResult::recovery` tells the whole
    /// story.
    prelude_recovery: RecoveryLog,
}

impl<'d, 'c, T: Scalar + Reduce> Chase<'d, 'c, T>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    /// Allocate buffers for the given distributed matrix.
    ///
    /// `initial` optionally provides a global `N x ne` block of approximate
    /// eigenvectors (ChASE's sequence-of-eigenproblems use case); otherwise
    /// the start block is random (seeded, identical across ranks).
    pub fn new(
        dev: &'d Device<'c>,
        h: DistHerm<T>,
        params: Params,
        initial: Option<&Matrix<T>>,
    ) -> Self {
        let warm = initial.map(|v0| WarmStart {
            v0: v0.clone(),
            bounds: None,
        });
        Self::with_warm_start(dev, h, params, warm.as_ref())
    }

    /// Allocate buffers, seeding the search space from a [`WarmStart`]
    /// (the first-class sequence entry point).
    ///
    /// The warm block may have any `1 <= k <= ne` columns; the remaining
    /// `ne - k` search directions are drawn from the seeded random block, so
    /// callers no longer pad by hand. Cached bounds, when present, replace
    /// the Lanczos estimation phase (with a `b_sup` safety margin).
    pub fn with_warm_start(
        dev: &'d Device<'c>,
        h: DistHerm<T>,
        params: Params,
        warm: Option<&WarmStart<T>>,
    ) -> Self {
        params.validate(h.n);
        let ne = params.ne();
        let ctx = dev.ctx();
        let c_dist = RowDist::c_layout(h.n, ctx.shape, h.dist);
        let b_dist = RowDist::b_layout(h.n, ctx.shape, h.dist);

        let c_global = match warm {
            Some(w) => {
                assert_eq!(w.v0.rows(), h.n, "warm-start block row count");
                let k = w.v0.cols();
                assert!(
                    (1..=ne).contains(&k),
                    "warm-start block must have 1..=ne columns (got {k}, ne {ne})"
                );
                if k == ne {
                    w.v0.clone()
                } else {
                    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
                    let mut g = Matrix::random(h.n, ne, &mut rng);
                    for j in 0..k {
                        g.col_mut(j).copy_from_slice(w.v0.col(j));
                    }
                    g
                }
            }
            None => {
                let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
                Matrix::random(h.n, ne, &mut rng)
            }
        };
        let c = c_global.select_rows(h.row_set.iter());
        let c2 = c.clone();
        let b = Matrix::zeros(h.n_c(), ne);
        let b2 = Matrix::zeros(h.n_c(), ne);
        Self {
            dev,
            h,
            c,
            c2,
            b,
            b2,
            ritzv: vec![<T::Real as Scalar>::zero(); ne],
            resd: vec![<T::Real as Scalar>::one(); ne],
            degs: vec![0; ne],
            locked: 0,
            c_dist,
            b_dist,
            params,
            warm_bounds: warm.and_then(|w| w.inflated_bounds(WARM_BOUND_MARGIN)),
            h_lo: None,
            escalated: false,
            prev_est_cond: 0.0,
            prev_low_max_res: f64::INFINITY,
            low_stall: 0,
            start_iter: 0,
            base_matvecs: 0,
            base_lowprec_matvecs: 0,
            prelude_recovery: RecoveryLog::default(),
        }
    }

    /// Restore solver state from a checkpoint [`Snapshot`], typically onto
    /// a *different* (shrunk) grid than the one that wrote it: the global
    /// iterate is re-sliced into this rank's C-layout row set, and the
    /// Lanczos phase is skipped via the snapshot's spectral bounds. The
    /// subsequent [`Chase::try_solve`] resumes at `snapshot.iter + 1` with
    /// Ritz values, residuals, degrees, and the locked prefix intact.
    pub fn apply_snapshot(&mut self, snap: &Snapshot) -> Result<(), CkptError> {
        let ne = self.params.ne();
        snap.check_problem::<T>(self.h.n, self.params.nev, ne, self.params.seed)?;
        if snap.locked > ne {
            return Err(CkptError::Field {
                field: "locked",
                detail: format!("{} exceeds ne={ne}", snap.locked),
            });
        }
        let c_global = snap.c_global::<T>()?;
        self.c = c_global.select_rows(self.h.row_set.iter());
        self.c2 = self.c.clone();
        for (dst, &bits) in self.ritzv.iter_mut().zip(&snap.ritzv_bits) {
            *dst = T::Real::from_f64_r(f64::from_bits(bits));
        }
        for (dst, &bits) in self.resd.iter_mut().zip(&snap.resd_bits) {
            *dst = T::Real::from_f64_r(f64::from_bits(bits));
        }
        for (dst, &d) in self.degs.iter_mut().zip(&snap.degs) {
            *dst = d as usize;
        }
        self.locked = snap.locked;
        self.warm_bounds = Some(snap.bounds::<T::Real>());
        self.start_iter = snap.iter;
        self.base_matvecs = snap.matvecs;
        self.base_lowprec_matvecs = snap.lowprec_matvecs;
        Ok(())
    }

    /// Prepend recovery events recorded before this solve attempt (the
    /// elastic driver's crash→shrink→restore trail).
    pub fn set_prelude_recovery(&mut self, prelude: RecoveryLog) {
        self.prelude_recovery = prelude;
    }

    /// Eq. (2) audit: bytes actually allocated by this rank.
    pub fn memory_report(&self) -> MemoryReport {
        MemoryReport {
            h_bytes: self.h.local.bytes(),
            c_bytes: self.c.bytes() + self.c2.bytes(),
            b_bytes: self.b.bytes() + self.b2.bytes(),
            a_bytes: self.params.ne() * self.params.ne() * std::mem::size_of::<T>(),
            redundant_bytes: 0,
        }
    }

    /// Redistribute `C2` (C-layout) into `B2` (B-layout): a single broadcast
    /// from the diagonal rank on square grids (Algorithm 2, line 14), an
    /// allgather + slice otherwise.
    fn update_b2(&mut self) {
        let ctx = self.dev.ctx();
        let ne = self.params.ne();
        if ctx.shape.is_square() {
            let root = ctx.col; // rank (j, j) within column communicator j
            if ctx.row == root {
                debug_assert_eq!(self.c2.rows(), self.b2.rows());
                self.b2.as_mut_slice().copy_from_slice(self.c2.as_slice());
            }
            self.dev.bcast(&ctx.col_comm, self.b2.as_mut_slice(), root);
        } else {
            let gathered = self.dev.allgather(&ctx.col_comm, self.c2.as_slice());
            let full = self.c_dist.assemble(&gathered, ne);
            self.b2 = full.select_rows(self.h.col_set.iter());
        }
    }

    /// Assemble the global iterate over the column communicator (every rank
    /// joins the collective) and persist a [`Snapshot`] from world rank 0
    /// via tmp+rename, so readers never observe a torn file. Write errors
    /// are swallowed deliberately: a full disk on rank 0 must not diverge
    /// its control flow from the other ranks' (recovery logs are compared
    /// bitwise across ranks).
    fn write_checkpoint(
        &self,
        iter: usize,
        matvecs: u64,
        lowprec_matvecs: u64,
        bounds: SpectralBounds<T::Real>,
    ) {
        let ctx = self.dev.ctx();
        let ne = self.params.ne();
        self.dev.set_region(Region::Other);
        let gathered = self.dev.allgather(&ctx.col_comm, self.c.as_slice());
        let full = self.c_dist.assemble(&gathered, ne);
        if ctx.world_rank() == 0 {
            if let Some(dir) = &self.params.checkpoint_dir {
                let snap = Snapshot::capture::<T>(
                    iter,
                    self.locked,
                    self.params.nev,
                    self.params.seed,
                    &bounds,
                    &self.ritzv,
                    &self.resd,
                    &self.degs,
                    matvecs,
                    lowprec_matvecs,
                    &full,
                );
                let _ = snap.save(dir);
            }
        }
        // Commit barrier: no rank may advance past this iteration until the
        // snapshot is durable. Without it a fast rank could crash in the
        // *next* iteration while rank 0 is still writing, making checkpoint
        // availability on recovery a wall-clock race instead of an
        // invariant ("a crash at iter N always finds the iter N-k file").
        let _ = ctx.world.allreduce_scalar(0.0);
    }

    /// One Rayleigh–Ritz projection over the active columns
    /// (Algorithm 2, lines 14–20). Returns the active Ritz values.
    ///
    /// With guards enabled, a poisoned (non-finite) quotient or a failed
    /// redundant eigensolve returns `Err(())` — agreed across the whole
    /// world first, so every rank bails before the next collective and the
    /// SPMD call sequences stay aligned. Without guards the historic panic
    /// behavior is kept.
    fn rayleigh_ritz(&mut self) -> Result<Vec<T::Real>, ()> {
        self.dev.set_region(Region::RayleighRitz);
        let ne = self.params.ne();
        let act = ne - self.locked;
        let ctx = self.dev.ctx();

        self.update_b2();
        // B[:, act] = H C[:, act]
        hemm_c_to_b(
            self.dev,
            ctx,
            &self.h,
            &self.c,
            &mut self.b,
            self.locked,
            act,
            T::one(),
            T::zero(),
        );
        // A = B2[:, act]^H B[:, act], reduced over the row communicator.
        let mut a = Matrix::<T>::zeros(act, act);
        self.dev.gemm(
            Op::ConjTrans,
            Op::None,
            T::one(),
            self.b2.cols_ref(self.locked..ne),
            self.b.cols_ref(self.locked..ne),
            T::zero(),
            a.as_mut(),
        );
        self.dev.allreduce_sum(&ctx.row_comm, a.as_mut_slice());
        let a_finite = a.as_slice().iter().all(|v| v.is_finite());
        let solved = if a_finite {
            self.dev.heevd(&a).ok()
        } else {
            None
        };
        if self.params.guards {
            // Corruption may have poisoned only one grid row's replica of A;
            // agree world-wide so all ranks take the same exit.
            let bad = ctx
                .world
                .allreduce_scalar(if solved.is_some() { 0.0f64 } else { 1.0 });
            if bad > 0.0 {
                return Err(());
            }
        }
        let (vals, y) = solved.expect("Rayleigh-Ritz eigensolve failed");
        // Back-transform: C[:, act] = C2[:, act] Y (local within column comm).
        self.dev.gemm(
            Op::None,
            Op::None,
            T::one(),
            self.c2.cols_ref(self.locked..ne),
            y.as_ref(),
            T::zero(),
            self.c.cols_mut(self.locked..ne),
        );
        // C2 mirrors C on the active part; refresh B2 for the residuals.
        let act_block = self.c.copy_cols(self.locked..ne);
        self.c2.set_cols(self.locked, &act_block);
        self.update_b2();
        Ok(vals)
    }

    /// Residual norms of the active columns (Algorithm 2, lines 21–25).
    fn residuals(&mut self) {
        self.dev.set_region(Region::Residuals);
        let ne = self.params.ne();
        let act = ne - self.locked;
        let ctx = self.dev.ctx();
        // B[:, act] = H C[:, act]
        hemm_c_to_b(
            self.dev,
            ctx,
            &self.h,
            &self.c,
            &mut self.b,
            self.locked,
            act,
            T::one(),
            T::zero(),
        );
        // B -= ritzv .* B2 , column-wise (single batched BLAS-1 kernel).
        self.dev.blas1::<T>(self.h.n_c() * act * 2);
        let mut nrm: Vec<T::Real> = Vec::with_capacity(act);
        for k in 0..act {
            let j = self.locked + k;
            let lambda = self.ritzv[j];
            let (bj, b2j) = {
                let b2col = self.b2.col(j).to_vec();
                (self.b.col_mut(j), b2col)
            };
            for (x, y) in bj.iter_mut().zip(&b2j) {
                *x -= y.scale(lambda);
            }
            nrm.push(chase_linalg::blas1::nrm2_sqr(bj));
        }
        self.dev.allreduce_sum_real::<T>(&ctx.row_comm, &mut nrm);
        for (k, v) in nrm.into_iter().enumerate() {
            self.resd[self.locked + k] = v.sqrt_r();
        }
    }

    /// Deflation & locking: after the Rayleigh–Ritz step the active columns
    /// are in ascending Ritz order, so locking the longest converged
    /// *prefix* guarantees the locked set is exactly the lowest eigenpairs
    /// (no holes — a converged pair above an unconverged one must wait).
    /// Returns how many were locked.
    fn lock_converged(&mut self, norm_h: T::Real) -> usize {
        let ne = self.params.ne();
        let tol = T::Real::from_f64_r(self.params.tol) * norm_h;
        let before = self.locked;
        while self.locked < ne && self.resd[self.locked] < tol {
            self.locked += 1;
        }
        self.locked - before
    }

    /// Fold any fault-injection records the device/comm layers produced
    /// since the last drain into the recovery log.
    fn drain_faults(&self, iter: usize, recovery: &mut RecoveryLog) {
        if let Some(plan) = self.dev.fault_plan() {
            for r in plan.take_records() {
                recovery.push(iter, RecoveryEventKind::Injected(r));
            }
        }
    }

    /// Roll the locked set back to `ckpt` and restart the active subspace
    /// from a fresh deterministic random block. The block is generated
    /// globally and sliced per rank — identical on every rank — so this
    /// also restores replica consistency after a detected divergence.
    fn rollback_and_restart(
        &mut self,
        iter: usize,
        mu_1: T::Real,
        init_deg: usize,
        ckpt: &Checkpoint<T>,
    ) -> (usize, usize) {
        let ne = self.params.ne();
        let kept = ckpt.locked;
        for j in 0..kept {
            self.c.col_mut(j).copy_from_slice(ckpt.c.col(j));
            self.ritzv[j] = ckpt.ritzv[j];
            self.resd[j] = ckpt.resd[j];
        }
        self.locked = kept;
        let restarted = ne - kept;
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.params.seed ^ 0x0dd_f00d ^ (iter as u64).rotate_left(32),
        );
        let fresh = Matrix::<T>::random(self.h.n, restarted, &mut rng);
        let local = fresh.select_rows(self.h.row_set.iter());
        for (t, j) in (kept..ne).enumerate() {
            self.c.col_mut(j).copy_from_slice(local.col(t));
            self.ritzv[j] = mu_1;
            self.resd[j] = <T::Real as Scalar>::one();
            self.degs[j] = init_deg;
        }
        self.c2 = self.c.clone();
        (kept, restarted)
    }

    /// Post-solve verification (fault-injection runs only): the returned
    /// eigenvalues must agree bitwise-closely across all replicas, and the
    /// residuals recomputed from scratch must match the reported ones. Any
    /// violation is world-agreed before returning so every rank exits the
    /// collectives in lockstep.
    fn verify_returned_pairs(
        &mut self,
        nev: usize,
        ritz: &[T::Real],
        reported: &[T::Real],
        norm_h: T::Real,
    ) -> Result<(), String> {
        let ctx = self.dev.ctx();
        let scale = norm_h.to_f64().max(1.0);
        let p = ctx.world.size() as f64;

        // (a) Replica agreement: grid-row divergence shows up here.
        let mut sums: Vec<f64> = ritz[..nev].iter().map(|v| v.to_f64()).collect();
        ctx.world.allreduce_sum(&mut sums);
        let mut detail = String::new();
        for (k, s) in sums.iter().enumerate() {
            let mine = ritz[k].to_f64();
            let avg = s / p;
            if !mine.is_finite() || (mine - avg).abs() > 1e-6 * scale {
                detail =
                    format!("eigenvalue {k} diverges across ranks (local {mine}, grid mean {avg})");
                break;
            }
        }
        let bad = ctx
            .world
            .allreduce_scalar(if detail.is_empty() { 0.0f64 } else { 1.0 });
        if bad > 0.0 {
            if detail.is_empty() {
                detail = "eigenvalue divergence detected on another rank".into();
            }
            return Err(detail);
        }

        // (b) Recompute residuals of the returned pairs from scratch: a
        // corrupted residual collective that caused a premature lock is
        // caught here.
        self.c2 = self.c.clone();
        self.update_b2();
        hemm_c_to_b(
            self.dev,
            ctx,
            &self.h,
            &self.c,
            &mut self.b,
            0,
            nev,
            T::one(),
            T::zero(),
        );
        let mut nrm: Vec<T::Real> = Vec::with_capacity(nev);
        for (k, &lambda) in ritz.iter().enumerate().take(nev) {
            let b2col = self.b2.col(k).to_vec();
            let bk = self.b.col_mut(k);
            for (x, y) in bk.iter_mut().zip(&b2col) {
                *x -= y.scale(lambda);
            }
            nrm.push(chase_linalg::blas1::nrm2_sqr(bk));
        }
        self.dev.allreduce_sum_real::<T>(&ctx.row_comm, &mut nrm);
        let mut detail = String::new();
        for (k, v) in nrm.into_iter().enumerate() {
            let r = v.sqrt_r().to_f64();
            let rep = reported[k].to_f64();
            if !r.is_finite() || r > 100.0 * rep + 1e-8 * scale {
                detail = format!("residual {k} recomputed as {r}, reported {rep}");
                break;
            }
        }
        let bad = ctx
            .world
            .allreduce_scalar(if detail.is_empty() { 0.0f64 } else { 1.0 });
        if bad > 0.0 {
            if detail.is_empty() {
                detail = "residual mismatch detected on another rank".into();
            }
            return Err(detail);
        }
        Ok(())
    }

    /// Run the full Algorithm 2 loop, panicking on unrecoverable faults
    /// (the historic infallible API).
    pub fn solve(self) -> ChaseResult<T> {
        self.try_solve()
            .unwrap_or_else(|e| panic!("ChASE solve aborted: {e}"))
    }

    /// Run the full Algorithm 2 loop with the detection/recovery guard
    /// layer. Returns a typed [`ChaseError`] (carrying the recovery log)
    /// instead of hanging or silently returning corrupt eigenpairs.
    pub fn try_solve(mut self) -> Result<ChaseResult<T>, ChaseError> {
        /// Rollback-restarts tolerated before declaring the run lost.
        const MAX_RESTARTS: usize = 3;
        let ne = self.params.ne();
        let nev = self.params.nev;
        let ctx = self.dev.ctx();
        ctx.trace_span_begin("solve", 0);
        // Recovery events already mirrored into the trace counter stream.
        let mut traced_recovery = 0usize;

        // Warm starts reuse the previous solve's (inflated) bounds and skip
        // the Lanczos phase entirely — the sequence's second saving besides
        // the reduced filter degrees.
        let warm_started = self.warm_bounds.is_some();
        let bounds = match self.warm_bounds {
            Some(b) => b,
            None => estimate_bounds_dist(self.dev, &self.h, ne, &self.params),
        };
        let b_sup = bounds.b_sup;
        let mut mu_1 = bounds.mu_1;
        let mut mu_ne = bounds.mu_ne;
        let norm_h = mu_1.abs_r().max_r(b_sup.abs_r());
        // Residual floor of the demoted filter: below ~50*eps_lo*||H|| the
        // low-precision recurrence can no longer separate the subspace.
        let lo_floor = LO_FLOOR_EPS_MULT
            * <<T::Lo as Scalar>::Real as RealScalar>::EPS.to_f64()
            * norm_h.to_f64();
        let mixed = self.params.precision == PrecisionMode::Mixed && T::HAS_LO;
        let mut lowprec_matvecs = self.base_lowprec_matvecs;

        let resumed = self.start_iter > 0;
        let init_deg = self.params.deg + self.params.deg % 2;
        if !resumed {
            // Initialize Ritz values at the lower estimate (used by the first
            // condition estimate; see Section 4.2's first-iteration caveat).
            // A checkpoint resume keeps the restored values instead.
            self.ritzv.fill(mu_1);
            self.degs.fill(init_deg);
        }

        let mut stats: Vec<IterStats> = Vec::new();
        let mut total_matvecs = self.base_matvecs;
        let mut converged = false;
        let mut iterations = self.start_iter;
        let mut recovery = std::mem::take(&mut self.prelude_recovery);
        let mut restarts = 0usize;
        // The rollback target: on resume the restored locked prefix already
        // is a known-good state, so seed it from there.
        let mut ckpt = Checkpoint {
            locked: self.locked,
            c: self.c.copy_cols(0..self.locked),
            ritzv: self.ritzv[..self.locked].to_vec(),
            resd: self.resd[..self.locked].to_vec(),
        };

        for iter in (self.start_iter + 1)..=self.params.max_iter {
            iterations = iter;
            // Re-opening "iteration" auto-closes the previous iteration span,
            // so the recovery `continue` paths need no explicit span end.
            ctx.trace_span_begin("iteration", iter as u64);
            if recovery.events.len() > traced_recovery {
                ctx.trace_counter(
                    "recovery_events",
                    (recovery.events.len() - traced_recovery) as u64,
                );
                traced_recovery = recovery.events.len();
            }
            if let Some(plan) = self.dev.fault_plan() {
                plan.set_iter(iter as u64);
            }
            let half = T::Real::from_f64_r(0.5);
            let c_center = (b_sup + mu_ne) * half;
            let e_half = (b_sup - mu_ne) * half;

            if iter > 1 {
                if self.params.optimize_degrees {
                    let new_degs = optimize_degrees(
                        &self.resd[self.locked..]
                            .iter()
                            .map(|r| r.to_f64())
                            .collect::<Vec<_>>(),
                        &self.ritzv[self.locked..]
                            .iter()
                            .map(|r| r.to_f64())
                            .collect::<Vec<_>>(),
                        c_center.to_f64(),
                        e_half.to_f64(),
                        self.params.tol * norm_h.to_f64(),
                        self.params.max_deg,
                    );
                    self.degs[self.locked..].copy_from_slice(&new_degs);
                } else {
                    for d in &mut self.degs[self.locked..] {
                        *d = init_deg;
                    }
                }
                // Sort active columns ascending by degree (Alg. 1 line 12).
                let perm = degree_sort_permutation(&self.degs[self.locked..]);
                permute_cols(&mut self.c, self.locked, &perm);
                permute_cols(&mut self.c2, self.locked, &perm);
                permute_vec(&mut self.ritzv[self.locked..], &perm);
                permute_vec(&mut self.resd[self.locked..], &perm);
                permute_vec(&mut self.degs[self.locked..], &perm);
            }

            // --- Filter (Algorithm 2 line 10) ---
            let fb = FilterBounds {
                c: c_center,
                e: e_half,
                mu_1,
            };
            let degrees: Vec<usize> = self.degs[self.locked..].to_vec();
            let exec = self.params.filter_exec();
            // --- Mixed-precision policy (pure function of world-replicated
            // state: residuals, Ritz values and the previous condition
            // estimate are identical on every rank, so the decision is too).
            // Residuals start at one(), so iteration 1 always qualifies.
            let max_active_res = self.resd[self.locked..]
                .iter()
                .fold(0.0f64, |m, r| m.max(r.to_f64()));
            if mixed && !self.escalated {
                if max_active_res < 0.7 * self.prev_low_max_res {
                    self.low_stall = 0;
                } else {
                    self.low_stall += 1;
                }
                self.prev_low_max_res = max_active_res;
            }
            let run_low = mixed
                && !self.escalated
                && max_active_res > lo_floor
                && self.low_stall < LO_STALL_LIMIT
                && self.prev_est_cond < LO_COND_LIMIT
                && fb.demote().is_valid();
            if mixed && !run_low && !self.escalated {
                // The policy declined once (floor reached, conditioning at
                // risk, or interval degenerates under demotion): stay full
                // for the rest of the solve so the schedule is monotone.
                self.escalated = true;
            }
            let filtered = if run_low {
                if self.h_lo.is_none() {
                    self.h_lo = Some(self.h.demote());
                }
                chebyshev_filter_mixed(
                    self.dev,
                    ctx,
                    self.h_lo.as_mut().expect("demoted replica just built"),
                    &mut self.c,
                    &mut self.b,
                    self.locked,
                    &degrees,
                    fb,
                    exec,
                )
            } else {
                chebyshev_filter_with(
                    self.dev,
                    ctx,
                    &mut self.h,
                    &mut self.c,
                    &mut self.b,
                    self.locked,
                    &degrees,
                    fb,
                    exec,
                )
            };
            let mv = match filtered {
                Ok(mv) => mv,
                Err(e) => {
                    self.drain_faults(iter, &mut recovery);
                    return Err(filter_abort(e, iter, recovery));
                }
            };
            total_matvecs += mv;
            if run_low {
                lowprec_matvecs += mv;
            }

            // --- Inject planned block faults (chaos harness only) ---
            if let Some(plan) = self.dev.fault_plan() {
                plan.apply_block_faults(&mut self.c, self.locked, ne - self.locked);
            }

            // --- Guard: post-filter finite check + bounded re-filter ---
            if self.params.guards {
                let mut attempt = 0usize;
                let mut precision_rung_used = false;
                loop {
                    let act = ne - self.locked;
                    let mut flags = vec![0.0f64; act];
                    for (k, f) in flags.iter_mut().enumerate() {
                        if self.c.col(self.locked + k).iter().any(|v| !v.is_finite()) {
                            *f = 1.0;
                        }
                    }
                    // Agree world-wide on which columns are poisoned: a NaN
                    // in one replica must trigger the same repair everywhere.
                    ctx.world.allreduce_sum(&mut flags);
                    let bad: Vec<usize> = flags
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| **f > 0.0)
                        .map(|(k, _)| self.locked + k)
                        .collect();
                    if bad.is_empty() {
                        break;
                    }
                    self.drain_faults(iter, &mut recovery);
                    recovery.push(iter, RecoveryEventKind::NonFiniteBlock { cols: bad.len() });
                    // Precision rung: when this iteration filtered demoted,
                    // non-finite output is most likely an f32 range problem,
                    // not a transient fault. Re-filter the poisoned columns
                    // at full precision and the *same* degrees before
                    // spending any bounded degree-bump attempts. Escalation
                    // is sticky and world-agreed (the poison set came from a
                    // world allreduce, so every rank takes this rung
                    // together).
                    if run_low && !precision_rung_used {
                        precision_rung_used = true;
                        self.escalated = true;
                        let mut by_degree: Vec<(usize, usize)> =
                            bad.iter().map(|&j| (self.degs[j], j)).collect();
                        by_degree.sort_unstable();
                        match self.refilter_columns(&by_degree, fb, exec) {
                            Ok(mv2) => total_matvecs += mv2,
                            Err(e) => {
                                self.drain_faults(iter, &mut recovery);
                                return Err(filter_abort(e, iter, recovery));
                            }
                        }
                        recovery.push(
                            iter,
                            RecoveryEventKind::PrecisionEscalated {
                                cols: by_degree.len(),
                            },
                        );
                        continue;
                    }
                    attempt += 1;
                    if attempt > self.params.max_refilter {
                        return Err(ChaseError {
                            kind: ChaseErrorKind::UnrecoverableNonFinite,
                            iter,
                            recovery,
                        });
                    }
                    // Restore poisoned columns from the pre-filter copy and
                    // re-filter them at a bumped (still even) degree.
                    let mut by_degree: Vec<(usize, usize)> = bad
                        .iter()
                        .map(|&j| {
                            let mut d = (self.degs[j] + 2 * attempt).min(self.params.max_deg);
                            d += d % 2;
                            (d, j)
                        })
                        .collect();
                    by_degree.sort_unstable();
                    match self.refilter_columns(&by_degree, fb, exec) {
                        Ok(mv2) => total_matvecs += mv2,
                        Err(e) => {
                            self.drain_faults(iter, &mut recovery);
                            return Err(filter_abort(e, iter, recovery));
                        }
                    }
                    recovery.push(
                        iter,
                        RecoveryEventKind::Refiltered {
                            cols: by_degree.len(),
                            degree: by_degree.last().map(|&(d, _)| d).unwrap_or(0),
                            attempt,
                        },
                    );
                }
            }

            // --- Condition estimate (Algorithm 2 line 11 / Algorithm 5) ---
            let est_cond = cond_est(
                &self.ritzv.iter().map(|r| r.to_f64()).collect::<Vec<_>>(),
                c_center.to_f64(),
                e_half.to_f64(),
                &self.degs,
                self.locked,
            );
            self.prev_est_cond = est_cond;

            // kappa_com of "the matrix of vectors outputted by the filter"
            // (Fig. 1): the active block only — locked columns were not
            // filtered this iteration.
            let true_cond = if self.params.track_true_cond {
                let gathered = ctx.col_comm.allgather(self.c.as_slice());
                let full = self.c_dist.assemble(&gathered, ne);
                let active = full.copy_cols(self.locked..ne);
                Some(chase_linalg::cond2(&active).to_f64())
            } else {
                None
            };

            // --- Flexible QR with escalation ladder (Algorithm 2 line 12) ---
            self.dev.set_region(Region::Qr);
            let (qr_variant, attempts) = qr_ladder(
                self.dev,
                &ctx.col_comm,
                &mut self.c,
                &self.c_dist,
                est_cond,
                self.params.qr,
            );
            if attempts.len() > 1 {
                ctx.trace_counter("qr_rung_climbs", (attempts.len() - 1) as u64);
            }
            for (k, a) in attempts.iter().enumerate() {
                if let Some(e) = a.error {
                    recovery.push(
                        iter,
                        RecoveryEventKind::QrBreakdown {
                            variant: a.variant.name(),
                            detail: e.to_string(),
                        },
                    );
                    recovery.push(
                        iter,
                        RecoveryEventKind::QrEscalated {
                            from: a.variant.name(),
                            to: attempts[k + 1].variant.name(),
                        },
                    );
                }
            }
            if self.params.guards {
                // Each column communicator ran its ladder on its own replica.
                // If escalation counts disagree, the replicas have diverged:
                // roll back and restart the active subspace in lockstep.
                let esc = (attempts.len() - 1) as f64;
                let total = ctx.world.allreduce_scalar(esc);
                if total != esc * ctx.world.size() as f64 {
                    self.drain_faults(iter, &mut recovery);
                    recovery.push(iter, RecoveryEventKind::ReplicaDivergence { stage: "qr" });
                    restarts += 1;
                    if restarts > MAX_RESTARTS {
                        return Err(ChaseError {
                            kind: ChaseErrorKind::UnrecoverableNonFinite,
                            iter,
                            recovery,
                        });
                    }
                    let (kept, restarted) = self.rollback_and_restart(iter, mu_1, init_deg, &ckpt);
                    recovery.push(iter, RecoveryEventKind::LockedRollback { kept, restarted });
                    continue;
                }
            }
            // Line 13: restore exact locked vectors, refresh C2's active part.
            if self.locked > 0 {
                let locked_block = self.c2.copy_cols(0..self.locked);
                self.c.set_cols(0, &locked_block);
            }
            let act_block = self.c.copy_cols(self.locked..ne);
            self.c2.set_cols(self.locked, &act_block);

            // --- Rayleigh-Ritz (lines 14-20) + residuals (21-25), guarded ---
            let mut regression: Option<(usize, u64)> = None;
            match self.rayleigh_ritz() {
                Ok(vals) => {
                    self.ritzv[self.locked..].copy_from_slice(&vals);
                    self.residuals();
                    if self.params.guards {
                        let mut local: Option<(usize, u64)> = None;
                        for j in self.locked..ne {
                            let rv = self.ritzv[j].to_f64();
                            let rs = self.resd[j].to_f64();
                            if !rv.is_finite() {
                                local = Some((j, rv.to_bits()));
                                break;
                            }
                            if !rs.is_finite() {
                                local = Some((j, rs.to_bits()));
                                break;
                            }
                        }
                        let bad =
                            ctx.world
                                .allreduce_scalar(if local.is_some() { 1.0f64 } else { 0.0 });
                        if bad > 0.0 {
                            regression =
                                Some(local.unwrap_or((self.locked, f64::INFINITY.to_bits())));
                        }
                    }
                }
                Err(()) => {
                    regression = Some((self.locked, f64::INFINITY.to_bits()));
                }
            }
            if let Some((col, value_bits)) = regression {
                self.drain_faults(iter, &mut recovery);
                recovery.push(
                    iter,
                    RecoveryEventKind::ResidualRegression { col, value_bits },
                );
                restarts += 1;
                if restarts > MAX_RESTARTS {
                    return Err(ChaseError {
                        kind: ChaseErrorKind::UnrecoverableNonFinite,
                        iter,
                        recovery,
                    });
                }
                let (kept, restarted) = self.rollback_and_restart(iter, mu_1, init_deg, &ckpt);
                recovery.push(iter, RecoveryEventKind::LockedRollback { kept, restarted });
                continue;
            }

            // --- Deflation & locking (line 26) ---
            let new_locked = self.lock_converged(norm_h);
            if new_locked > 0 {
                ckpt = Checkpoint {
                    locked: self.locked,
                    c: self.c.copy_cols(0..self.locked),
                    ritzv: self.ritzv[..self.locked].to_vec(),
                    resd: self.resd[..self.locked].to_vec(),
                };
            }

            let active_res = &self.resd[self.locked.min(ne - 1)..];
            stats.push(IterStats {
                iter,
                est_cond,
                true_cond,
                qr_variant,
                matvecs: mv,
                low_precision: run_low,
                new_locked,
                locked: self.locked,
                min_res: active_res
                    .iter()
                    .fold(f64::INFINITY, |m, r| m.min(r.to_f64())),
                max_res: active_res.iter().fold(0.0f64, |m, r| m.max(r.to_f64())),
                max_degree: *self.degs[self.locked.min(ne - 1)..]
                    .iter()
                    .max()
                    .unwrap_or(&0),
            });

            // Bound updates (Algorithm 2, lines 5-7).
            mu_1 = self
                .ritzv
                .iter()
                .copied()
                .fold(self.ritzv[0], |m, v| m.min_r(v));
            mu_ne = self
                .ritzv
                .iter()
                .copied()
                .fold(self.ritzv[0], |m, v| m.max_r(v));

            // --- Periodic checkpoint (elastic recovery substrate) ---
            // Every rank joins the assembly collective; rank 0 writes. The
            // saved event is pushed on every rank so cross-rank recovery
            // logs stay bitwise-identical.
            if self.params.checkpoint_every > 0
                && self.params.checkpoint_dir.is_some()
                && iter % self.params.checkpoint_every == 0
                && self.locked < nev
            {
                self.write_checkpoint(
                    iter,
                    total_matvecs,
                    lowprec_matvecs,
                    SpectralBounds { mu_1, mu_ne, b_sup },
                );
                recovery.push(
                    iter,
                    RecoveryEventKind::CheckpointSaved {
                        iter,
                        locked: self.locked,
                    },
                );
            }

            self.drain_faults(iter, &mut recovery);
            if self.locked >= nev {
                converged = true;
                break;
            }
        }
        self.drain_faults(iterations, &mut recovery);
        if recovery.events.len() > traced_recovery {
            ctx.trace_counter(
                "recovery_events",
                (recovery.events.len() - traced_recovery) as u64,
            );
        }
        ctx.trace_span_end("solve");

        // Sort the locked prefix ascending by Ritz value for clean output.
        let take = self.locked.max(nev.min(ne)).min(ne);
        let mut order: Vec<usize> = (0..take).collect();
        order.sort_by(|&a, &b| self.ritzv[a].partial_cmp(&self.ritzv[b]).unwrap());
        permute_cols(&mut self.c, 0, &order);
        let ritz_sorted: Vec<T::Real> = order.iter().map(|&i| self.ritzv[i]).collect();
        let res_sorted: Vec<T::Real> = order.iter().map(|&i| self.resd[i]).collect();

        // Chaos runs must never return silently-wrong eigenpairs: cross-check
        // the replicas and the residuals before handing the result back.
        if self.params.inject.is_some() {
            self.dev.set_region(Region::Other);
            if let Err(detail) = self.verify_returned_pairs(nev, &ritz_sorted, &res_sorted, norm_h)
            {
                self.drain_faults(iterations, &mut recovery);
                return Err(ChaseError {
                    kind: ChaseErrorKind::VerificationFailed { detail },
                    iter: iterations,
                    recovery,
                });
            }
            self.drain_faults(iterations, &mut recovery);
        }

        Ok(ChaseResult {
            eigenvalues: ritz_sorted[..nev].to_vec(),
            residuals: res_sorted[..nev].to_vec(),
            eigenvectors_local: self.c.copy_cols(0..nev),
            rows: self.h.row_set.clone(),
            n: self.h.n,
            iterations,
            matvecs: total_matvecs,
            lowprec_matvecs,
            converged,
            stats,
            norm_h: norm_h.to_f64(),
            bounds: SpectralBounds { mu_1, mu_ne, b_sup },
            warm_started,
            recovery,
            plan: self.params.plan.clone(),
        })
    }

    /// Restore the columns named in `by_degree` (sorted ascending
    /// `(degree, col)` pairs) from the pre-filter copy `C2` and re-filter
    /// them at full precision, writing the results (and degrees) back in
    /// place. Shared by the precision rung (same degrees) and the
    /// degree-bump rung (bumped degrees) of the recovery ladder.
    fn refilter_columns(
        &mut self,
        by_degree: &[(usize, usize)],
        fb: FilterBounds<T::Real>,
        exec: FilterExec,
    ) -> Result<u64, FilterError> {
        let ctx = self.dev.ctx();
        let k = by_degree.len();
        let mut tmp_c = Matrix::<T>::zeros(self.h.n_r(), k);
        let mut tmp_b = Matrix::<T>::zeros(self.h.n_c(), k);
        for (t, &(_, j)) in by_degree.iter().enumerate() {
            tmp_c.col_mut(t).copy_from_slice(self.c2.col(j));
        }
        let redegs: Vec<usize> = by_degree.iter().map(|&(d, _)| d).collect();
        let mv = chebyshev_filter_with(
            self.dev,
            ctx,
            &mut self.h,
            &mut tmp_c,
            &mut tmp_b,
            0,
            &redegs,
            fb,
            exec,
        )?;
        for (t, &(d, j)) in by_degree.iter().enumerate() {
            self.c.col_mut(j).copy_from_slice(tmp_c.col(t));
            self.degs[j] = d;
        }
        Ok(mv)
    }

    /// Access the B-layout distribution (used by diagnostics).
    pub fn b_dist(&self) -> &RowDist {
        &self.b_dist
    }
}

/// Map a filter failure to the solver's typed abort, logging timeouts into
/// the recovery trail (spectrum/degree violations are caller bugs or stale
/// warm bounds — no recovery event, just the typed error).
fn filter_abort(e: FilterError, iter: usize, mut recovery: RecoveryLog) -> ChaseError {
    let kind = match e {
        FilterError::Comm(chase_comm::CommError::Timeout(t)) => {
            recovery.push(
                iter,
                RecoveryEventKind::Timeout {
                    op_id: t.op_id,
                    timeout_ms: t.timeout_ms,
                },
            );
            ChaseErrorKind::CollectiveTimeout(t)
        }
        FilterError::Comm(chase_comm::CommError::RankDead { dead, .. }) => {
            recovery.push(iter, RecoveryEventKind::RankDead { dead: dead.clone() });
            ChaseErrorKind::RankDead { dead }
        }
        FilterError::Comm(chase_comm::CommError::UnknownOp { op_id }) => {
            ChaseErrorKind::UnknownCollective { op_id }
        }
        FilterError::BadSpectrum(detail) | FilterError::BadDegrees(detail) => {
            ChaseErrorKind::BadSpectrum { detail }
        }
    };
    ChaseError {
        kind,
        iter,
        recovery,
    }
}

/// Solve a distributed eigenproblem from within an SPMD region, returning a
/// typed error (with the recovery log) on unrecoverable faults.
///
/// When `params.inject` is set, a per-rank [`FaultPlan`] is compiled and
/// wired into the rank's three communicators (payload corruption, delays,
/// drops) and into the device layer (filtered-block corruption). The hooks
/// are always cleared before returning.
pub fn try_solve_dist<T: Scalar + Reduce>(
    ctx: &chase_comm::RankCtx,
    backend: Backend,
    h: DistHerm<T>,
    params: &Params,
    initial: Option<&Matrix<T>>,
) -> Result<ChaseResult<T>, ChaseError>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    let warm = initial.map(|v0| WarmStart {
        v0: v0.clone(),
        bounds: None,
    });
    try_solve_dist_warm(ctx, backend, h, params, warm.as_ref())
}

/// [`try_solve_dist`] with a first-class [`WarmStart`]: the sequence entry
/// point. Accepts a partial vector block (`k <= ne` columns) and optional
/// cached spectral bounds (skipping the Lanczos phase).
pub fn try_solve_dist_warm<T: Scalar + Reduce>(
    ctx: &chase_comm::RankCtx,
    backend: Backend,
    h: DistHerm<T>,
    params: &Params,
    warm: Option<&WarmStart<T>>,
) -> Result<ChaseResult<T>, ChaseError>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    try_solve_dist_inner(ctx, backend, h, params, warm, None, RecoveryLog::default())
}

/// Resume a solve from a checkpoint [`Snapshot`] — typically on a *shrunk*
/// grid after a rank crash. The snapshot's global iterate is re-sliced into
/// this grid's block-cyclic C-layout, the Lanczos phase is skipped via the
/// snapshot's bounds, and the loop continues at `snapshot.iter + 1`.
/// `prelude` carries the crash→shrink→restore trail recorded by the
/// elastic driver; it is prepended to the attempt's recovery log.
pub fn try_solve_dist_resumed<T: Scalar + Reduce>(
    ctx: &chase_comm::RankCtx,
    backend: Backend,
    h: DistHerm<T>,
    params: &Params,
    snapshot: &Snapshot,
    prelude: RecoveryLog,
) -> Result<ChaseResult<T>, ChaseError>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    try_solve_dist_inner(ctx, backend, h, params, None, Some(snapshot), prelude)
}

pub(crate) fn try_solve_dist_inner<T: Scalar + Reduce>(
    ctx: &chase_comm::RankCtx,
    backend: Backend,
    h: DistHerm<T>,
    params: &Params,
    warm: Option<&WarmStart<T>>,
    resume: Option<&Snapshot>,
    prelude: RecoveryLog,
) -> Result<ChaseResult<T>, ChaseError>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    // Reject malformed parameters as a typed error before any collective
    // work: one bad workload entry must not abort a whole serve run.
    if let Err(detail) = params.try_validate(h.n) {
        return Err(ChaseError {
            kind: ChaseErrorKind::InvalidParams { detail },
            iter: 0,
            recovery: RecoveryLog::default(),
        });
    }
    let plan = params
        .inject
        .as_ref()
        .map(|spec| Arc::new(FaultPlan::new(spec.clone(), ctx.world_rank(), ctx.row)));
    let comms = [&ctx.world, &ctx.row_comm, &ctx.col_comm];
    if let Some(ms) = params.wait_timeout_ms {
        for c in comms {
            c.set_wait_timeout_ms(ms);
        }
    }
    if let Some(p) = &plan {
        let hook: Arc<dyn CommFaultHook> = p.clone();
        for c in comms {
            c.set_fault_hook(Some(hook.clone()));
        }
        // Mirror injections into the trace stream when a recorder is
        // installed on this rank.
        p.set_trace_hook(ctx.trace_hook());
        // Arm rank-crash injections: without a death handle a `rank-crash`
        // site is inert, so plain solves never crash by accident.
        p.set_death_handle(Some(ctx.death_handle()));
    }
    let dev = Device::with_collectives(
        ctx,
        backend,
        params.collective,
        chase_device::Topology::juwels_booster(),
    )
    .with_faults(plan.clone());
    let out = (|| {
        let mut chase = Chase::with_warm_start(&dev, h, params.clone(), warm);
        if let Some(snap) = resume {
            chase.apply_snapshot(snap).map_err(|e| ChaseError {
                kind: ChaseErrorKind::BadCheckpoint {
                    detail: e.to_string(),
                },
                iter: snap.iter,
                recovery: RecoveryLog::default(),
            })?;
        }
        chase.set_prelude_recovery(prelude);
        chase.try_solve()
    })();
    if let Some(p) = &plan {
        for c in comms {
            c.set_fault_hook(None);
        }
        p.set_trace_hook(None);
        p.set_death_handle(None);
    }
    out
}

/// Solve a distributed eigenproblem from within an SPMD region (the historic
/// infallible API; panics on unrecoverable injected faults).
pub fn solve_dist<T: Scalar + Reduce>(
    ctx: &chase_comm::RankCtx,
    backend: Backend,
    h: DistHerm<T>,
    params: &Params,
    initial: Option<&Matrix<T>>,
) -> ChaseResult<T>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    try_solve_dist(ctx, backend, h, params, initial)
        .unwrap_or_else(|e| panic!("ChASE solve aborted: {e}"))
}

/// Serial fallible entry point: solve on a replicated matrix with a trivial
/// 1x1 grid (still exercising the full distributed code path).
pub fn try_solve_serial<T: Scalar + Reduce>(
    h: &Matrix<T>,
    params: &Params,
) -> Result<ChaseResult<T>, ChaseError>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    let ctx = chase_comm::solo_ctx();
    let dh = DistHerm::from_global(h, &ctx);
    try_solve_dist(&ctx, Backend::Nccl, dh, params, None)
}

/// Serial warm-started entry point for sequences of correlated problems.
pub fn try_solve_serial_warm<T: Scalar + Reduce>(
    h: &Matrix<T>,
    params: &Params,
    warm: Option<&WarmStart<T>>,
) -> Result<ChaseResult<T>, ChaseError>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    let ctx = chase_comm::solo_ctx();
    let dh = DistHerm::from_global(h, &ctx);
    try_solve_dist_warm(&ctx, Backend::Nccl, dh, params, warm)
}

/// Serial convenience entry point (panics on unrecoverable injected faults).
pub fn solve_serial<T: Scalar + Reduce>(h: &Matrix<T>, params: &Params) -> ChaseResult<T>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    try_solve_serial(h, params).unwrap_or_else(|e| panic!("ChASE solve aborted: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_linalg::C64;

    #[test]
    fn swap_and_permute_cols() {
        let mut m = Matrix::<f64>::from_fn(2, 4, |i, j| (10 * j + i) as f64);
        swap_cols(&mut m, 0, 3);
        assert_eq!(m[(0, 0)], 30.0);
        assert_eq!(m[(1, 3)], 1.0);
        // permute active block [1..4] with perm [2,0,1] over old cols 1,2,3
        permute_cols(&mut m, 1, &[2, 0, 1]);
        assert_eq!(m[(0, 1)], 0.0); // old col 3 (which held col 0's data)
        assert_eq!(m[(0, 2)], 10.0);
        assert_eq!(m[(0, 3)], 20.0);
    }

    #[test]
    fn serial_solve_small_uniform() {
        let spec = chase_matgen::Spectrum::uniform(60, -1.0, 1.0);
        let h = chase_matgen::dense_with_spectrum::<C64>(&spec, 42);
        let mut p = Params::new(6, 4);
        p.tol = 1e-9;
        let r = solve_serial(&h, &p);
        assert!(r.converged, "did not converge in {} iters", r.iterations);
        for (k, v) in r.eigenvalues.iter().enumerate() {
            let want = spec.values()[k];
            assert!((v - want).abs() < 1e-7, "lambda_{k}: got {v}, want {want}");
        }
        assert!(r.matvecs > 0);
    }
}
