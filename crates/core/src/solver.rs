//! The main ChASE iteration with the novel parallelization scheme
//! (Algorithm 2 of the paper).
//!
//! Per outer iteration: Chebyshev-filter the active columns of `C`
//! (C-layout), orthonormalize `C` with the flexible 1D-CAQR inside each
//! column communicator, redistribute `C2 -> B2`, form the Rayleigh–Ritz
//! quotient with one row-communicator allreduce, diagonalize it redundantly,
//! back-transform locally, compute residuals in B-layout, then deflate and
//! lock converged columns. The only replicated object is the `ne x ne`
//! quotient `A` — the `O(N ne)` redundancy of v1.2 is gone (Section 3.1).

use crate::condest::cond_est;
use crate::degrees::{degree_sort_permutation, optimize_degrees};
use crate::filter::{chebyshev_filter_with, FilterBounds};
use crate::hemm::{hemm_c_to_b, matvec_replicated};
use crate::layout::{DistHerm, MemoryReport, RowDist};
use crate::params::Params;
use crate::qr::flexible_qr;
use crate::result::{ChaseResult, IterStats};
use chase_comm::{Reduce, Region};
use chase_device::{Backend, Device};
use chase_linalg::{Matrix, Op, RealScalar, Scalar, SpectralBounds};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Swap two columns of a matrix.
#[allow(dead_code)]
pub(crate) fn swap_cols<T: Scalar>(m: &mut Matrix<T>, i: usize, j: usize) {
    if i == j {
        return;
    }
    let (a, b) = m.two_cols_mut(i, j);
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        std::mem::swap(x, y);
    }
}

/// Permute columns `offset..offset+perm.len()` of `m` so that new column `k`
/// is old column `offset + perm[k]`.
pub(crate) fn permute_cols<T: Scalar>(m: &mut Matrix<T>, offset: usize, perm: &[usize]) {
    let block = m.copy_cols(offset..offset + perm.len());
    for (k, &src) in perm.iter().enumerate() {
        m.col_mut(offset + k).copy_from_slice(block.col(src));
    }
}

fn permute_vec<V: Copy>(v: &mut [V], perm: &[usize]) {
    let old: Vec<V> = v.to_vec();
    for (k, &src) in perm.iter().enumerate() {
        v[k] = old[src];
    }
}

/// Distributed spectral-bound estimation (Algorithm 2, line 1): `runs`
/// Lanczos runs of `steps` iterations on the distributed operator, with a
/// DoS quantile for `mu_ne`. Identical output on every rank.
pub fn estimate_bounds_dist<T: Scalar + Reduce>(
    dev: &Device<'_>,
    h: &DistHerm<T>,
    ne: usize,
    params: &Params,
) -> SpectralBounds<T::Real> {
    dev.set_region(Region::Lanczos);
    let ctx = dev.ctx();
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0x1a9c205);
    chase_linalg::estimate_bounds::<T, _, _>(
        h.n,
        ne,
        params.lanczos_steps,
        params.lanczos_runs,
        |x, y| matvec_replicated(dev, ctx, h, x, y),
        &mut rng,
    )
}

/// Solver state for one rank.
pub struct Chase<'d, 'c, T: Scalar + Reduce>
where
    T::Real: Reduce,
{
    dev: &'d Device<'c>,
    params: Params,
    h: DistHerm<T>,
    c: Matrix<T>,
    c2: Matrix<T>,
    b: Matrix<T>,
    b2: Matrix<T>,
    ritzv: Vec<T::Real>,
    resd: Vec<T::Real>,
    degs: Vec<usize>,
    locked: usize,
    c_dist: RowDist,
    b_dist: RowDist,
}

impl<'d, 'c, T: Scalar + Reduce> Chase<'d, 'c, T>
where
    T::Real: Reduce,
{
    /// Allocate buffers for the given distributed matrix.
    ///
    /// `initial` optionally provides a global `N x ne` block of approximate
    /// eigenvectors (ChASE's sequence-of-eigenproblems use case); otherwise
    /// the start block is random (seeded, identical across ranks).
    pub fn new(
        dev: &'d Device<'c>,
        h: DistHerm<T>,
        params: Params,
        initial: Option<&Matrix<T>>,
    ) -> Self {
        params.validate(h.n);
        let ne = params.ne();
        let ctx = dev.ctx();
        let c_dist = RowDist::c_layout(h.n, ctx.shape, h.dist);
        let b_dist = RowDist::b_layout(h.n, ctx.shape, h.dist);

        let c_global = match initial {
            Some(v0) => {
                assert_eq!(v0.rows(), h.n);
                assert_eq!(v0.cols(), ne);
                v0.clone()
            }
            None => {
                let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
                Matrix::random(h.n, ne, &mut rng)
            }
        };
        let c = c_global.select_rows(h.row_set.iter());
        let c2 = c.clone();
        let b = Matrix::zeros(h.n_c(), ne);
        let b2 = Matrix::zeros(h.n_c(), ne);
        Self {
            dev,
            h,
            c,
            c2,
            b,
            b2,
            ritzv: vec![<T::Real as Scalar>::zero(); ne],
            resd: vec![<T::Real as Scalar>::one(); ne],
            degs: vec![0; ne],
            locked: 0,
            c_dist,
            b_dist,
            params,
        }
    }

    /// Eq. (2) audit: bytes actually allocated by this rank.
    pub fn memory_report(&self) -> MemoryReport {
        MemoryReport {
            h_bytes: self.h.local.bytes(),
            c_bytes: self.c.bytes() + self.c2.bytes(),
            b_bytes: self.b.bytes() + self.b2.bytes(),
            a_bytes: self.params.ne() * self.params.ne() * std::mem::size_of::<T>(),
            redundant_bytes: 0,
        }
    }

    /// Redistribute `C2` (C-layout) into `B2` (B-layout): a single broadcast
    /// from the diagonal rank on square grids (Algorithm 2, line 14), an
    /// allgather + slice otherwise.
    fn update_b2(&mut self) {
        let ctx = self.dev.ctx();
        let ne = self.params.ne();
        if ctx.shape.is_square() {
            let root = ctx.col; // rank (j, j) within column communicator j
            if ctx.row == root {
                debug_assert_eq!(self.c2.rows(), self.b2.rows());
                self.b2.as_mut_slice().copy_from_slice(self.c2.as_slice());
            }
            self.dev.bcast(&ctx.col_comm, self.b2.as_mut_slice(), root);
        } else {
            let gathered = self.dev.allgather(&ctx.col_comm, self.c2.as_slice());
            let full = self.c_dist.assemble(&gathered, ne);
            self.b2 = full.select_rows(self.h.col_set.iter());
        }
    }

    /// One Rayleigh–Ritz projection over the active columns
    /// (Algorithm 2, lines 14–20). Returns the active Ritz values.
    fn rayleigh_ritz(&mut self) -> Vec<T::Real> {
        self.dev.set_region(Region::RayleighRitz);
        let ne = self.params.ne();
        let act = ne - self.locked;
        let ctx = self.dev.ctx();

        self.update_b2();
        // B[:, act] = H C[:, act]
        hemm_c_to_b(
            self.dev,
            ctx,
            &self.h,
            &self.c,
            &mut self.b,
            self.locked,
            act,
            T::one(),
            T::zero(),
        );
        // A = B2[:, act]^H B[:, act], reduced over the row communicator.
        let mut a = Matrix::<T>::zeros(act, act);
        self.dev.gemm(
            Op::ConjTrans,
            Op::None,
            T::one(),
            self.b2.cols_ref(self.locked..ne),
            self.b.cols_ref(self.locked..ne),
            T::zero(),
            a.as_mut(),
        );
        self.dev.allreduce_sum(&ctx.row_comm, a.as_mut_slice());
        let (vals, y) = self.dev.heevd(&a).expect("Rayleigh-Ritz eigensolve failed");
        // Back-transform: C[:, act] = C2[:, act] Y (local within column comm).
        self.dev.gemm(
            Op::None,
            Op::None,
            T::one(),
            self.c2.cols_ref(self.locked..ne),
            y.as_ref(),
            T::zero(),
            self.c.cols_mut(self.locked..ne),
        );
        // C2 mirrors C on the active part; refresh B2 for the residuals.
        let act_block = self.c.copy_cols(self.locked..ne);
        self.c2.set_cols(self.locked, &act_block);
        self.update_b2();
        vals
    }

    /// Residual norms of the active columns (Algorithm 2, lines 21–25).
    fn residuals(&mut self) {
        self.dev.set_region(Region::Residuals);
        let ne = self.params.ne();
        let act = ne - self.locked;
        let ctx = self.dev.ctx();
        // B[:, act] = H C[:, act]
        hemm_c_to_b(
            self.dev,
            ctx,
            &self.h,
            &self.c,
            &mut self.b,
            self.locked,
            act,
            T::one(),
            T::zero(),
        );
        // B -= ritzv .* B2 , column-wise (single batched BLAS-1 kernel).
        self.dev.blas1::<T>(self.h.n_c() * act * 2);
        let mut nrm: Vec<T::Real> = Vec::with_capacity(act);
        for k in 0..act {
            let j = self.locked + k;
            let lambda = self.ritzv[j];
            let (bj, b2j) = {
                let b2col = self.b2.col(j).to_vec();
                (self.b.col_mut(j), b2col)
            };
            for (x, y) in bj.iter_mut().zip(&b2j) {
                *x -= y.scale(lambda);
            }
            nrm.push(chase_linalg::blas1::nrm2_sqr(bj));
        }
        self.dev.allreduce_sum_real::<T>(&ctx.row_comm, &mut nrm);
        for (k, v) in nrm.into_iter().enumerate() {
            self.resd[self.locked + k] = v.sqrt_r();
        }
    }

    /// Deflation & locking: after the Rayleigh–Ritz step the active columns
    /// are in ascending Ritz order, so locking the longest converged
    /// *prefix* guarantees the locked set is exactly the lowest eigenpairs
    /// (no holes — a converged pair above an unconverged one must wait).
    /// Returns how many were locked.
    fn lock_converged(&mut self, norm_h: T::Real) -> usize {
        let ne = self.params.ne();
        let tol = T::Real::from_f64_r(self.params.tol) * norm_h;
        let before = self.locked;
        while self.locked < ne && self.resd[self.locked] < tol {
            self.locked += 1;
        }
        self.locked - before
    }

    /// Run the full Algorithm 2 loop.
    pub fn solve(mut self) -> ChaseResult<T> {
        let ne = self.params.ne();
        let nev = self.params.nev;
        let ctx = self.dev.ctx();

        let bounds = estimate_bounds_dist(self.dev, &self.h, ne, &self.params);
        let b_sup = bounds.b_sup;
        let mut mu_1 = bounds.mu_1;
        let mut mu_ne = bounds.mu_ne;
        let norm_h = mu_1.abs_r().max_r(b_sup.abs_r());

        // Initialize Ritz values at the lower estimate (used by the first
        // condition estimate; see Section 4.2's first-iteration caveat).
        self.ritzv.fill(mu_1);
        let init_deg = self.params.deg + self.params.deg % 2;
        self.degs.fill(init_deg);

        let mut stats: Vec<IterStats> = Vec::new();
        let mut total_matvecs = 0u64;
        let mut converged = false;
        let mut iterations = 0;

        for iter in 1..=self.params.max_iter {
            iterations = iter;
            let half = T::Real::from_f64_r(0.5);
            let c_center = (b_sup + mu_ne) * half;
            let e_half = (b_sup - mu_ne) * half;

            if iter > 1 {
                if self.params.optimize_degrees {
                    let new_degs = optimize_degrees(
                        &self.resd[self.locked..]
                            .iter()
                            .map(|r| r.to_f64())
                            .collect::<Vec<_>>(),
                        &self.ritzv[self.locked..]
                            .iter()
                            .map(|r| r.to_f64())
                            .collect::<Vec<_>>(),
                        c_center.to_f64(),
                        e_half.to_f64(),
                        self.params.tol * norm_h.to_f64(),
                        self.params.max_deg,
                    );
                    self.degs[self.locked..].copy_from_slice(&new_degs);
                } else {
                    for d in &mut self.degs[self.locked..] {
                        *d = init_deg;
                    }
                }
                // Sort active columns ascending by degree (Alg. 1 line 12).
                let perm = degree_sort_permutation(&self.degs[self.locked..]);
                permute_cols(&mut self.c, self.locked, &perm);
                permute_cols(&mut self.c2, self.locked, &perm);
                permute_vec(&mut self.ritzv[self.locked..], &perm);
                permute_vec(&mut self.resd[self.locked..], &perm);
                permute_vec(&mut self.degs[self.locked..], &perm);
            }

            // --- Filter (Algorithm 2 line 10) ---
            let fb = FilterBounds {
                c: c_center,
                e: e_half,
                mu_1,
            };
            let degrees: Vec<usize> = self.degs[self.locked..].to_vec();
            let mv = chebyshev_filter_with(
                self.dev,
                ctx,
                &mut self.h,
                &mut self.c,
                &mut self.b,
                self.locked,
                &degrees,
                fb,
                self.params.filter_exec(),
            );
            total_matvecs += mv;

            // --- Condition estimate (Algorithm 2 line 11 / Algorithm 5) ---
            let est_cond = cond_est(
                &self.ritzv.iter().map(|r| r.to_f64()).collect::<Vec<_>>(),
                c_center.to_f64(),
                e_half.to_f64(),
                &self.degs,
                self.locked,
            );

            // kappa_com of "the matrix of vectors outputted by the filter"
            // (Fig. 1): the active block only — locked columns were not
            // filtered this iteration.
            let true_cond = if self.params.track_true_cond {
                let gathered = ctx.col_comm.allgather(self.c.as_slice());
                let full = self.c_dist.assemble(&gathered, ne);
                let active = full.copy_cols(self.locked..ne);
                Some(chase_linalg::cond2(&active).to_f64())
            } else {
                None
            };

            // --- Flexible QR (Algorithm 2 line 12) ---
            self.dev.set_region(Region::Qr);
            let qr_variant = flexible_qr(
                self.dev,
                &ctx.col_comm,
                &mut self.c,
                &self.c_dist,
                est_cond,
                self.params.qr,
            );
            // Line 13: restore exact locked vectors, refresh C2's active part.
            if self.locked > 0 {
                let locked_block = self.c2.copy_cols(0..self.locked);
                self.c.set_cols(0, &locked_block);
            }
            let act_block = self.c.copy_cols(self.locked..ne);
            self.c2.set_cols(self.locked, &act_block);

            // --- Rayleigh-Ritz (lines 14-20) ---
            let vals = self.rayleigh_ritz();
            self.ritzv[self.locked..].copy_from_slice(&vals);

            // --- Residuals (lines 21-25) ---
            self.residuals();

            // --- Deflation & locking (line 26) ---
            let new_locked = self.lock_converged(norm_h);

            let active_res = &self.resd[self.locked.min(ne - 1)..];
            stats.push(IterStats {
                iter,
                est_cond,
                true_cond,
                qr_variant,
                matvecs: mv,
                new_locked,
                locked: self.locked,
                min_res: active_res
                    .iter()
                    .fold(f64::INFINITY, |m, r| m.min(r.to_f64())),
                max_res: active_res.iter().fold(0.0f64, |m, r| m.max(r.to_f64())),
                max_degree: *self.degs[self.locked.min(ne - 1)..]
                    .iter()
                    .max()
                    .unwrap_or(&0),
            });

            // Bound updates (Algorithm 2, lines 5-7).
            mu_1 = self
                .ritzv
                .iter()
                .copied()
                .fold(self.ritzv[0], |m, v| m.min_r(v));
            mu_ne = self
                .ritzv
                .iter()
                .copied()
                .fold(self.ritzv[0], |m, v| m.max_r(v));

            if self.locked >= nev {
                converged = true;
                break;
            }
        }

        // Sort the locked prefix ascending by Ritz value for clean output.
        let take = self.locked.max(nev.min(ne)).min(ne);
        let mut order: Vec<usize> = (0..take).collect();
        order.sort_by(|&a, &b| self.ritzv[a].partial_cmp(&self.ritzv[b]).unwrap());
        permute_cols(&mut self.c, 0, &order);
        let ritz_sorted: Vec<T::Real> = order.iter().map(|&i| self.ritzv[i]).collect();
        let res_sorted: Vec<T::Real> = order.iter().map(|&i| self.resd[i]).collect();

        ChaseResult {
            eigenvalues: ritz_sorted[..nev].to_vec(),
            residuals: res_sorted[..nev].to_vec(),
            eigenvectors_local: self.c.copy_cols(0..nev),
            rows: self.h.row_set.clone(),
            n: self.h.n,
            iterations,
            matvecs: total_matvecs,
            converged,
            stats,
            norm_h: norm_h.to_f64(),
        }
    }

    /// Access the B-layout distribution (used by diagnostics).
    pub fn b_dist(&self) -> &RowDist {
        &self.b_dist
    }
}

/// Solve a distributed eigenproblem from within an SPMD region.
pub fn solve_dist<T: Scalar + Reduce>(
    ctx: &chase_comm::RankCtx,
    backend: Backend,
    h: DistHerm<T>,
    params: &Params,
    initial: Option<&Matrix<T>>,
) -> ChaseResult<T>
where
    T::Real: Reduce,
{
    let dev = Device::with_collectives(
        ctx,
        backend,
        params.collective,
        chase_device::Topology::juwels_booster(),
    );
    Chase::new(&dev, h, params.clone(), initial).solve()
}

/// Serial convenience entry point: solve on a replicated matrix with a
/// trivial 1x1 grid (still exercising the full distributed code path).
pub fn solve_serial<T: Scalar + Reduce>(h: &Matrix<T>, params: &Params) -> ChaseResult<T>
where
    T::Real: Reduce,
{
    let ctx = chase_comm::solo_ctx();
    let dh = DistHerm::from_global(h, &ctx);
    solve_dist(&ctx, Backend::Nccl, dh, params, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_linalg::C64;

    #[test]
    fn swap_and_permute_cols() {
        let mut m = Matrix::<f64>::from_fn(2, 4, |i, j| (10 * j + i) as f64);
        swap_cols(&mut m, 0, 3);
        assert_eq!(m[(0, 0)], 30.0);
        assert_eq!(m[(1, 3)], 1.0);
        // permute active block [1..4] with perm [2,0,1] over old cols 1,2,3
        permute_cols(&mut m, 1, &[2, 0, 1]);
        assert_eq!(m[(0, 1)], 0.0); // old col 3 (which held col 0's data)
        assert_eq!(m[(0, 2)], 10.0);
        assert_eq!(m[(0, 3)], 20.0);
    }

    #[test]
    fn serial_solve_small_uniform() {
        let spec = chase_matgen::Spectrum::uniform(60, -1.0, 1.0);
        let h = chase_matgen::dense_with_spectrum::<C64>(&spec, 42);
        let mut p = Params::new(6, 4);
        p.tol = 1e-9;
        let r = solve_serial(&h, &p);
        assert!(r.converged, "did not converge in {} iters", r.iterations);
        for (k, v) in r.eigenvalues.iter().enumerate() {
            let want = spec.values()[k];
            assert!((v - want).abs() < 1e-7, "lambda_{k}: got {v}, want {want}");
        }
        assert!(r.matvecs > 0);
    }
}
