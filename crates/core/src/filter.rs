//! The Chebyshev polynomial filter (Algorithm 1 line 4 / Algorithm 2 line 10).
//!
//! Implements the scaled three-term recurrence of the ChASE filter:
//!
//! ```text
//! sigma_1 = e / (mu_1 - c);          sigma = sigma_1
//! X_1 = (sigma_1 / e) (H - c I) X_0
//! for i = 2..=deg:
//!     sigma' = 1 / (2/sigma_1 - sigma)
//!     X_i = 2 (sigma'/e) (H - c I) X_{i-1} - (sigma sigma') X_{i-2}
//!     sigma = sigma'
//! ```
//!
//! damping `[c - e, c + e] = [mu_ne, b_sup]` while amplifying the wanted end
//! of the spectrum near `mu_1`. Odd applications land in B-layout, even ones
//! in C-layout; degrees are even so filtered vectors always finish in `C`
//! (Section 3.1). Per-vector degrees are honored by keeping the columns
//! sorted ascending-by-degree and shrinking the active range as steps pass
//! each column's degree.

use crate::hemm::{hemm_b_to_c, hemm_b_to_c_pipelined, hemm_c_to_b, hemm_c_to_b_pipelined};
use crate::layout::DistHerm;
use chase_comm::{CommError, RankCtx, Reduce, Region};
use chase_device::Device;
use chase_linalg::{Matrix, RealScalar, Scalar};

/// How the filter executes its HEMM/allreduce steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterExec {
    /// One flat GEMM + blocking allreduce per step (the reference path).
    #[default]
    Flat,
    /// Panel-chunked double-buffered steps: each step runs inside a ledger
    /// overlap window, computing panel `k+1` while panel `k`'s nonblocking
    /// allreduce is in flight. Bitwise identical to [`FilterExec::Flat`].
    Pipelined {
        /// Panel width in columns; `None` lets the topology tuner pick per
        /// step from the pipeline model.
        panel: Option<usize>,
    },
}

/// Interval parameters consumed by the filter.
#[derive(Debug, Clone, Copy)]
pub struct FilterBounds<R> {
    /// Center of the damped interval: `(b_sup + mu_ne) / 2`.
    pub c: R,
    /// Half-width: `(b_sup - mu_ne) / 2`.
    pub e: R,
    /// Estimate of the smallest (most wanted) eigenvalue.
    pub mu_1: R,
}

impl<R: RealScalar> FilterBounds<R> {
    pub fn from_spectrum(mu_1: R, mu_ne: R, b_sup: R) -> Self {
        let half = R::from_f64_r(0.5);
        Self {
            c: (b_sup + mu_ne) * half,
            e: (b_sup - mu_ne) * half,
            mu_1,
        }
    }

    /// Narrow the interval to the demoted real type for a low-precision
    /// filter pass.
    pub fn demote(self) -> FilterBounds<R::Lo> {
        FilterBounds {
            c: self.c.demote(),
            e: self.e.demote(),
            mu_1: self.mu_1.demote(),
        }
    }

    /// `true` when the interval is usable: finite values and a strictly
    /// positive half-width. User-supplied (or stale warm-start) spectra can
    /// violate this, so it is a typed-error condition, not an assert.
    pub fn is_valid(&self) -> bool {
        self.c.is_finite_r()
            && self.e.is_finite_r()
            && self.mu_1.is_finite_r()
            && self.e > R::zero()
    }
}

/// Typed rejection of filter inputs. `BadSpectrum`/`BadDegrees` are
/// reachable from user-supplied workloads (bad bounds in a warm start, a
/// corrupt degree table), so they surface as errors through `try_solve_*`
/// instead of aborting the process; `Comm` propagates a nonblocking
/// collective that never completed (timeout, dead peer, dropped post).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterError {
    /// Degenerate or non-finite damping interval (`e <= 0`).
    BadSpectrum(String),
    /// Degrees not ascending or not even `>= 2`.
    BadDegrees(String),
    /// A nonblocking collective inside the pipelined path failed: timed
    /// out, aborted on a dead rank, or was dropped before posting.
    Comm(CommError),
}

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterError::BadSpectrum(d) => write!(f, "bad spectrum: {d}"),
            FilterError::BadDegrees(d) => write!(f, "bad degrees: {d}"),
            FilterError::Comm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FilterError {}

impl From<CommError> for FilterError {
    fn from(e: CommError) -> Self {
        FilterError::Comm(e)
    }
}

/// Validate caller-controlled filter inputs (shared by the full- and
/// mixed-precision entry points).
fn validate_inputs<R: RealScalar>(
    degrees: &[usize],
    bounds: &FilterBounds<R>,
) -> Result<(), FilterError> {
    if !degrees.windows(2).all(|w| w[0] <= w[1]) {
        return Err(FilterError::BadDegrees(format!(
            "degrees must be ascending, got {degrees:?}"
        )));
    }
    if let Some(&d) = degrees.iter().find(|&&d| d < 2 || d % 2 != 0) {
        return Err(FilterError::BadDegrees(format!(
            "degrees must be even >= 2, got {d}"
        )));
    }
    if !bounds.is_valid() {
        return Err(FilterError::BadSpectrum(format!(
            "empty filter interval: c = {}, e = {} (need finite bounds with e > 0)",
            bounds.c.to_f64(),
            bounds.e.to_f64()
        )));
    }
    Ok(())
}

/// Apply the filter to columns `offset..offset + degrees.len()` of `c_buf`.
///
/// * `degrees` must be ascending and even (the solver sorts; see
///   [`crate::degrees::degree_sort_permutation`]).
/// * `b_buf` is scratch in B-layout (contents destroyed).
///
/// Returns the number of MatVec column-applications performed
/// (`sum(degrees)`) — the quantity Table 2 reports.
#[allow(clippy::too_many_arguments)]
pub fn chebyshev_filter<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &mut DistHerm<T>,
    c_buf: &mut Matrix<T>,
    b_buf: &mut Matrix<T>,
    offset: usize,
    degrees: &[usize],
    bounds: FilterBounds<T::Real>,
) -> u64 {
    chebyshev_filter_with(
        dev,
        ctx,
        h,
        c_buf,
        b_buf,
        offset,
        degrees,
        bounds,
        FilterExec::Flat,
    )
    .expect("flat filter on validated inputs")
}

/// One recurrence step: `direction` picks C→B (odd steps) or B→C (even
/// steps), `exec` picks the flat or pipelined schedule. Keeping the
/// (direction × schedule) dispatch in one place stops the precision
/// dimension from multiplying the old four-way match into eight arms.
#[allow(clippy::too_many_arguments)]
fn filter_step<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &mut DistHerm<T>,
    c_buf: &mut Matrix<T>,
    b_buf: &mut Matrix<T>,
    c_to_b: bool,
    col0: usize,
    ncols: usize,
    alpha: T,
    beta: T,
    exec: FilterExec,
) -> Result<(), CommError> {
    match (c_to_b, exec) {
        (true, FilterExec::Flat) => {
            hemm_c_to_b(dev, ctx, h, c_buf, b_buf, col0, ncols, alpha, beta);
            Ok(())
        }
        (false, FilterExec::Flat) => {
            hemm_b_to_c(dev, ctx, h, b_buf, c_buf, col0, ncols, alpha, beta);
            Ok(())
        }
        (true, FilterExec::Pipelined { panel }) => {
            hemm_c_to_b_pipelined(dev, ctx, h, c_buf, b_buf, col0, ncols, alpha, beta, panel)
        }
        (false, FilterExec::Pipelined { panel }) => {
            hemm_b_to_c_pipelined(dev, ctx, h, b_buf, c_buf, col0, ncols, alpha, beta, panel)
        }
    }
}

/// [`chebyshev_filter`] with an explicit execution strategy. The pipelined
/// strategy produces bitwise-identical output to the flat one; only the
/// schedule (and therefore the ledger) differs.
///
/// Errors: [`FilterError::BadSpectrum`]/[`FilterError::BadDegrees`] reject
/// invalid caller inputs before any work (reachable from user-supplied
/// workloads); [`FilterError::Comm`] propagates a nonblocking collective
/// failure from the pipelined schedule. The flat path on validated inputs
/// never fails.
#[allow(clippy::too_many_arguments)]
pub fn chebyshev_filter_with<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &mut DistHerm<T>,
    c_buf: &mut Matrix<T>,
    b_buf: &mut Matrix<T>,
    offset: usize,
    degrees: &[usize],
    bounds: FilterBounds<T::Real>,
    exec: FilterExec,
) -> Result<u64, FilterError> {
    if degrees.is_empty() {
        return Ok(0);
    }
    validate_inputs(degrees, &bounds)?;
    dev.set_region(Region::Filter);
    let dmax = *degrees.last().unwrap();
    let one = <T::Real as Scalar>::one();

    h.set_shift(bounds.c);

    let sigma1 = bounds.e / (bounds.mu_1 - bounds.c);
    let mut sigma = sigma1;
    let mut matvecs = 0u64;

    for step in 1..=dmax {
        // Columns with degree >= step are still active; ascending order means
        // they form a suffix of the block. Step 1 activates everything
        // (degrees >= 2).
        let first_active = degrees.partition_point(|&d| d < step);
        let ncols = degrees.len() - first_active;
        debug_assert!(ncols > 0);
        let col0 = offset + first_active;

        // Step 1 seeds the recurrence (`beta = 0`); later steps advance the
        // sigma scaling.
        let (alpha, beta) = if step == 1 {
            (T::from_real(sigma1 / bounds.e), T::zero())
        } else {
            let sigma_new = one / ((one + one) / sigma1 - sigma);
            let ab = (
                T::from_real((sigma_new + sigma_new) / bounds.e),
                T::from_real(-(sigma * sigma_new)),
            );
            sigma = sigma_new;
            ab
        };

        // Odd applications move C-layout -> B-layout, even ones back.
        let c_to_b = step % 2 == 1;
        filter_step(
            dev, ctx, h, c_buf, b_buf, c_to_b, col0, ncols, alpha, beta, exec,
        )
        .inspect_err(|_e| h.clear_shift())?;
        matvecs += ncols as u64;
    }

    h.clear_shift();
    Ok(matvecs)
}

/// Run a whole filter call in the demoted precision `T::Lo` (tentpole of the
/// mixed-precision mode): the active columns of `c_buf` are demoted into a
/// `T::Lo` staging block, the generic filter runs against the demoted `H`
/// replica — so every HEMM flop and every allreduce payload is half-width —
/// and the result is promoted back into the full-precision iterate
/// (promotion is exact, see `Scalar::promote`).
///
/// The ledger runs in `lo` mode for the duration, so modeled pricing and
/// collective byte accounting see the narrow type; the trace carries a
/// `filter_lo` span plus a `lowprec_matvecs` counter. Everything recorded is
/// a deterministic function of SPMD state, so traces stay bitwise-replayable.
#[allow(clippy::too_many_arguments)]
pub fn chebyshev_filter_mixed<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h_lo: &mut DistHerm<T::Lo>,
    c_buf: &mut Matrix<T>,
    b_buf: &mut Matrix<T>,
    offset: usize,
    degrees: &[usize],
    bounds: FilterBounds<T::Real>,
    exec: FilterExec,
) -> Result<u64, FilterError>
where
    T::Lo: Reduce,
{
    if degrees.is_empty() {
        return Ok(0);
    }
    // Validate in full precision first (caller bugs get full-width
    // diagnostics), then re-validate the demoted interval: a spectrum that
    // is fine in f64 can demote to a degenerate (or infinite) f32 interval.
    validate_inputs(degrees, &bounds)?;
    // Ascribe through `T::Lo::Real` (== `T::Real::Lo` by the Scalar trait's
    // equality constraint) so the demoted bounds typecheck as the inner
    // filter's real type.
    let lo_bounds: FilterBounds<<T::Lo as Scalar>::Real> = bounds.demote();
    validate_inputs(degrees, &lo_bounds).map_err(|e| match e {
        FilterError::BadSpectrum(d) => {
            FilterError::BadSpectrum(format!("interval degenerates under demotion: {d}"))
        }
        other => other,
    })?;

    let ncols = degrees.len();
    dev.set_region(Region::Filter);
    ctx.trace_span_begin("filter_lo", ncols as u64);

    // Demote the active columns into Lo staging. The conversion touches
    // every element once; account for it as a level-1 pass in the ledger.
    let rows_c = c_buf.rows();
    let mut c_lo = Matrix::<T::Lo>::from_fn(rows_c, ncols, |i, j| c_buf[(i, offset + j)].demote());
    let mut b_lo = Matrix::<T::Lo>::zeros(b_buf.rows(), ncols);
    ctx.record(chase_comm::EventKind::Blas1 {
        n: (rows_c * ncols) as u64,
    });

    dev.set_lo(true);
    let result = chebyshev_filter_with(
        dev, ctx, h_lo, &mut c_lo, &mut b_lo, 0, degrees, lo_bounds, exec,
    );
    dev.set_lo(false);

    let matvecs = result.inspect_err(|_e| ctx.trace_span_end("filter_lo"))?;

    // Promote back into the f64 iterate (exact widening).
    for j in 0..ncols {
        for i in 0..rows_c {
            c_buf[(i, offset + j)] = T::promote(c_lo[(i, j)]);
        }
    }
    ctx.record(chase_comm::EventKind::Blas1 {
        n: (rows_c * ncols) as u64,
    });
    ctx.trace_counter("lowprec_matvecs", matvecs);
    ctx.trace_span_end("filter_lo");
    Ok(matvecs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_comm::{run_grid, solo_ctx, GridShape};
    use chase_device::Backend;
    use chase_linalg::C64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Diagonal H: filtering acts independently per eigen-coordinate, so the
    /// amplification ratio is directly observable.
    fn diag_h(spec: &[f64], ctx: &RankCtx) -> DistHerm<C64> {
        DistHerm::from_fn(spec.len(), ctx, |i, j| {
            if i == j {
                C64::from_f64(spec[i])
            } else {
                C64::zero()
            }
        })
    }

    #[test]
    fn filter_amplifies_wanted_end() {
        // Spectrum: wanted eigenvalue at -2, damped interval [0, 2].
        let spec: Vec<f64> = vec![-2.0, 0.2, 0.8, 1.4, 2.0];
        let n = spec.len();
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let mut h = diag_h(&spec, &ctx);
        let mut c = Matrix::<C64>::from_fn(n, 1, |_, _| C64::one());
        let mut b = Matrix::<C64>::zeros(n, 1);
        let bounds = FilterBounds::from_spectrum(-2.0, 0.0, 2.0);
        let mv = chebyshev_filter(&dev, &ctx, &mut h, &mut c, &mut b, 0, &[8], bounds);
        assert_eq!(mv, 8);
        // Wanted coordinate stays O(1) (the sigma scaling normalizes it);
        // damped coordinates shrink hard.
        let wanted = c[(0, 0)].abs();
        assert!(wanted > 0.5, "wanted component {wanted}");
        for i in 1..n {
            assert!(
                c[(i, 0)].abs() < 0.05 * wanted,
                "coordinate {i} not damped: {}",
                c[(i, 0)].abs()
            );
        }
        // Shift must be removed afterwards.
        assert_eq!(h.current_shift(), 0.0);
    }

    #[test]
    fn higher_degree_damps_harder() {
        let spec: Vec<f64> = vec![-2.0, 1.0];
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let bounds = FilterBounds::from_spectrum(-2.0, 0.0, 2.0);
        let mut ratios = Vec::new();
        for deg in [4usize, 8, 16] {
            let mut h = diag_h(&spec, &ctx);
            let mut c = Matrix::<C64>::from_fn(2, 1, |_, _| C64::one());
            let mut b = Matrix::<C64>::zeros(2, 1);
            chebyshev_filter(&dev, &ctx, &mut h, &mut c, &mut b, 0, &[deg], bounds);
            ratios.push(c[(1, 0)].abs() / c[(0, 0)].abs());
        }
        assert!(ratios[1] < ratios[0] * 0.1);
        assert!(ratios[2] < ratios[1] * 0.1);
    }

    #[test]
    fn per_column_degrees_respected() {
        // Two columns with different degrees: the lower-degree column must
        // match a solo run at that degree exactly.
        let spec: Vec<f64> = vec![-2.0, -1.5, 0.5, 1.0, 1.8, 2.0];
        let n = spec.len();
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let bounds = FilterBounds::from_spectrum(-2.0, 0.0, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Matrix::<C64>::random(n, 2, &mut rng);

        let mut h = diag_h(&spec, &ctx);
        let mut c = x.clone();
        let mut b = Matrix::<C64>::zeros(n, 2);
        let mv = chebyshev_filter(&dev, &ctx, &mut h, &mut c, &mut b, 0, &[4, 10], bounds);
        assert_eq!(mv, 14);

        // Column 0 alone at degree 4.
        let mut h2 = diag_h(&spec, &ctx);
        let mut c2 = x.copy_cols(0..1);
        let mut b2 = Matrix::<C64>::zeros(n, 1);
        chebyshev_filter(&dev, &ctx, &mut h2, &mut c2, &mut b2, 0, &[4], bounds);
        for i in 0..n {
            assert!((c[(i, 0)] - c2[(i, 0)]).abs() < 1e-13);
        }
    }

    #[test]
    fn distributed_filter_matches_serial() {
        let n = 12;
        let ne = 4;
        let spec: Vec<f64> = (0..n)
            .map(|i| -3.0 + 6.0 * i as f64 / (n - 1) as f64)
            .collect();
        let hg = {
            let s = chase_matgen::Spectrum::from_values(spec.clone());
            chase_matgen::dense_with_spectrum::<C64>(&s, 11)
        };
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let x = Matrix::<C64>::random(n, ne, &mut rng);
        let bounds = FilterBounds::from_spectrum(-3.0, 0.0, 3.0);
        let degrees = vec![2usize, 4, 4, 6];

        // Serial reference.
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let mut h = DistHerm::from_global(&hg, &ctx);
        let mut c_ref = x.clone();
        let mut b_ref = Matrix::<C64>::zeros(n, ne);
        chebyshev_filter(
            &dev, &ctx, &mut h, &mut c_ref, &mut b_ref, 0, &degrees, bounds,
        );

        for shape in [GridShape::new(2, 2), GridShape::new(3, 2)] {
            let (hg, x, degrees, c_ref) = (&hg, &x, &degrees, &c_ref);
            let out = run_grid(shape, move |ctx| {
                let dev = Device::new(ctx, Backend::Std);
                let mut h = DistHerm::from_global(hg, ctx);
                let mut c = x.select_rows(h.row_set.iter());
                let mut b = Matrix::<C64>::zeros(h.n_c(), ne);
                chebyshev_filter(&dev, ctx, &mut h, &mut c, &mut b, 0, degrees, bounds);
                let want = c_ref.select_rows(h.row_set.iter());
                c.max_abs_diff(&want)
            });
            for d in out.results {
                assert!(d < 1e-11, "shape {shape:?} diff {d}");
            }
        }
    }

    #[test]
    fn pipelined_filter_matches_flat_bitwise_and_opens_windows() {
        let n = 16;
        let ne = 5;
        let spec: Vec<f64> = (0..n)
            .map(|i| -3.0 + 6.0 * i as f64 / (n - 1) as f64)
            .collect();
        let hg = {
            let s = chase_matgen::Spectrum::from_values(spec);
            chase_matgen::dense_with_spectrum::<C64>(&s, 21)
        };
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let x = Matrix::<C64>::random(n, ne, &mut rng);
        let bounds = FilterBounds::from_spectrum(-3.0, 0.0, 3.0);
        let degrees = vec![2usize, 4, 4, 6, 8];
        for panel in [Some(1), Some(3), None] {
            let (hg, x, degrees) = (&hg, &x, &degrees);
            let out = run_grid(GridShape::new(2, 2), move |ctx| {
                let dev = Device::new(ctx, Backend::Nccl);
                let mut h = DistHerm::from_global(hg, ctx);
                let mut flat = x.select_rows(h.row_set.iter());
                let mut b = Matrix::<C64>::zeros(h.n_c(), ne);
                chebyshev_filter(&dev, ctx, &mut h, &mut flat, &mut b, 0, degrees, bounds);
                let mut piped = x.select_rows(h.row_set.iter());
                let mut b2 = Matrix::<C64>::zeros(h.n_c(), ne);
                let mv = chebyshev_filter_with(
                    &dev,
                    ctx,
                    &mut h,
                    &mut piped,
                    &mut b2,
                    0,
                    degrees,
                    bounds,
                    FilterExec::Pipelined { panel },
                )
                .unwrap();
                assert_eq!(mv, degrees.iter().map(|&d| d as u64).sum::<u64>());
                assert_eq!(
                    flat.as_ref().as_slice(),
                    piped.as_ref().as_slice(),
                    "panel {panel:?} changed bits"
                );
                0u8
            });
            for l in &out.ledgers {
                // Every pipelined step (8 = dmax) opened its own window.
                let windows: std::collections::HashSet<_> =
                    l.events().iter().filter_map(|e| e.window).collect();
                assert_eq!(windows.len(), 8, "one overlap window per filter step");
            }
        }
    }

    #[test]
    fn offset_skips_locked_columns() {
        let spec: Vec<f64> = vec![-2.0, -1.0, 0.5, 2.0];
        let n = 4;
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let mut h = diag_h(&spec, &ctx);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = Matrix::<C64>::random(n, 3, &mut rng);
        let mut c = x.clone();
        let mut b = Matrix::<C64>::zeros(n, 3);
        let bounds = FilterBounds::from_spectrum(-2.0, 0.0, 2.0);
        chebyshev_filter(&dev, &ctx, &mut h, &mut c, &mut b, 1, &[4, 4], bounds);
        // Column 0 (locked) untouched.
        for i in 0..n {
            assert_eq!(c[(i, 0)], x[(i, 0)]);
        }
        // Columns 1, 2 filtered (changed).
        assert!(c.copy_cols(1..3).max_abs_diff(&x.copy_cols(1..3)) > 1e-6);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_degrees() {
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let mut h = diag_h(&[1.0, 2.0], &ctx);
        let mut c = Matrix::<C64>::zeros(2, 2);
        let mut b = Matrix::<C64>::zeros(2, 2);
        chebyshev_filter(
            &dev,
            &ctx,
            &mut h,
            &mut c,
            &mut b,
            0,
            &[6, 4],
            FilterBounds::from_spectrum(0.0, 1.0, 2.0),
        );
    }
}
