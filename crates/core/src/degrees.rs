//! Per-vector Chebyshev degree optimization (Algorithm 1, line 11).
//!
//! ChASE's key efficiency feature: instead of filtering every vector with
//! the same polynomial degree, each unconverged vector gets the smallest
//! degree expected to push its residual below `tol`, minimizing the total
//! MatVec count. The residual of the Ritz pair at `lambda` contracts per
//! filter application by roughly `1 / rho(t)` with
//! `t = (lambda - c)/e` (see [`crate::condest::growth_factor`]).

use crate::condest::growth_factor;

/// Smallest even degree in `[2, max_deg]` expected to drive `res` below
/// `tol`, given the vector's Ritz value mapped to `t`.
pub fn optimal_degree(res: f64, tol: f64, t: f64, max_deg: usize) -> usize {
    let rho = growth_factor(t);
    let deg = if res <= tol {
        // Already converged — one polishing pass.
        2.0
    } else if rho <= 1.0 + 1e-12 {
        // Inside the damped interval: filtering cannot help; use the cap.
        max_deg as f64
    } else {
        (res / tol).ln() / rho.ln()
    };
    let mut d = deg.ceil().max(2.0) as usize;
    // ChASE enforces even degrees so filtered vectors always end in C.
    d += d % 2;
    d.clamp(
        2,
        if max_deg.is_multiple_of(2) {
            max_deg
        } else {
            max_deg - 1
        },
    )
}

/// Vectorized version over the active columns.
///
/// Returns degrees aligned with `ritzv`/`resd` (both length = active count).
pub fn optimize_degrees(
    resd: &[f64],
    ritzv: &[f64],
    c: f64,
    e: f64,
    tol: f64,
    max_deg: usize,
) -> Vec<usize> {
    assert_eq!(resd.len(), ritzv.len());
    resd.iter()
        .zip(ritzv)
        .map(|(&r, &l)| optimal_degree(r, tol, (l - c) / e, max_deg))
        .collect()
}

/// Sort permutation by ascending degree (stable), as required by the
/// filter's shrinking-active-range scheme (Algorithm 1, line 12).
pub fn degree_sort_permutation(degs: &[usize]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..degs.len()).collect();
    idx.sort_by_key(|&i| degs[i]);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_are_even_and_clamped() {
        for res in [1e-2, 1e-6, 1e-9] {
            let d = optimal_degree(res, 1e-10, -3.0, 36);
            assert_eq!(d % 2, 0);
            assert!((2..=36).contains(&d));
        }
    }

    #[test]
    fn farther_eigenvalues_need_lower_degree() {
        // |t| = 5 decays much faster than |t| = 1.1.
        let d_far = optimal_degree(1e-2, 1e-10, -5.0, 100);
        let d_near = optimal_degree(1e-2, 1e-10, -1.1, 100);
        assert!(d_far < d_near, "{d_far} !< {d_near}");
    }

    #[test]
    fn smaller_residual_needs_lower_degree() {
        let d_big = optimal_degree(1e-1, 1e-10, -2.0, 100);
        let d_small = optimal_degree(1e-8, 1e-10, -2.0, 100);
        assert!(d_small < d_big);
    }

    #[test]
    fn converged_gets_minimum() {
        assert_eq!(optimal_degree(1e-12, 1e-10, -2.0, 36), 2);
    }

    #[test]
    fn inside_interval_gets_cap() {
        assert_eq!(optimal_degree(1e-2, 1e-10, 0.5, 36), 36);
    }

    #[test]
    fn exact_contraction_count() {
        // res/tol = 1e8, rho = 10 -> need 8 applications -> even -> 8.
        // Find t with rho(t) = 10: t = (10 + 1/10)/2 = 5.05.
        let d = optimal_degree(1e-2, 1e-10, 5.05, 100);
        assert_eq!(d, 8);
    }

    #[test]
    fn sort_permutation_ascending() {
        let degs = [8usize, 2, 36, 4];
        let p = degree_sort_permutation(&degs);
        assert_eq!(p, vec![1, 3, 0, 2]);
    }

    #[test]
    fn odd_cap_is_rounded_down() {
        let d = optimal_degree(1.0, 1e-10, 0.0, 35);
        assert_eq!(d, 34);
    }
}
