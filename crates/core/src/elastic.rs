//! Elastic rank-failure recovery: the detection → agreement → shrink →
//! redistribute → resume driver (DESIGN.md §15).
//!
//! [`try_solve_elastic`] wraps a distributed solve so a mid-solve rank
//! crash (the `rank-crash` fault, or any cooperative death marked on the
//! grid's dead board) is survived instead of wedging the job:
//!
//! 1. **Detection** — the victim's [`chase_faults::RankCrashPanic`] unwinds
//!    its own thread; survivors surface the death as a typed
//!    [`ChaseErrorKind::RankDead`] (nonblocking waits) or a
//!    [`chase_comm::RankDeadPanic`] (blocking waits), both caught here.
//! 2. **Agreement** — survivors run [`chase_comm::Communicator::agree_dead`], a
//!    deterministic round on machinery independent of the wedged collective
//!    engines, so every survivor resolves the *same* dead set.
//! 3. **Shrink** — [`chase_comm::shrink_ctx`] rebuilds a working grid over
//!    the survivors ([`GridShape::squarest`] over the survivor count;
//!    survivors keep relative order).
//! 4. **Redistribute** — the block-cyclic `H` panels and the iterate are
//!    rebuilt for the new grid from the deterministic matgen seed (the
//!    in-process analogue of an MPI repartition; its cost is priced on the
//!    ledger as [`EventKind::GridShrink`] + [`EventKind::Redistribute`]).
//! 5. **Resume** — every survivor independently scans the (shared)
//!    checkpoint directory; because [`crate::ckpt::load_latest`] is a pure
//!    function of the directory contents and snapshots are written
//!    atomically, the scan is itself the world-agreed restart decision. The
//!    solve resumes at `snapshot.iter + 1`, or cold-starts at iteration 0
//!    on the shrunk grid when no valid snapshot exists.
//!
//! The whole crash→shrink→restore trail is prepended to the resumed
//! attempt's [`RecoveryLog`] with spec-derived iteration stamps, so
//! survivor logs stay bitwise identical and recovery runs replay exactly.

use crate::ckpt::{load_latest, Snapshot};
use crate::layout::DistHerm;
use crate::params::Params;
use crate::result::{ChaseError, ChaseErrorKind, ChaseResult, RecoveryEventKind, RecoveryLog};
use crate::solver::try_solve_dist_inner;
use chase_comm::{shrink_ctx, Category, EventKind, GridShape, RankCtx, Reduce};
use chase_device::Backend;
use chase_faults::{InjectionRecord, RankCrashPanic};
use chase_linalg::Scalar;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// What one rank's elastic solve came to.
#[derive(Debug)]
pub struct ElasticOutcome<T: Scalar> {
    /// The final attempt's result (recovery trail included in its
    /// [`RecoveryLog`], whether it converged or failed).
    pub result: Result<ChaseResult<T>, ChaseError>,
    /// Solve attempts this rank ran (1 = no crash observed).
    pub attempts: usize,
    /// Shape of the grid the final attempt ran on.
    pub shape: GridShape,
    /// Communication events on this rank's ledger over the whole elastic
    /// run (pre-crash work included: the ledger survives the shrink). The
    /// checkpoint-vs-scratch comparison in the test matrix is in terms of
    /// this count.
    pub comm_events: usize,
}

/// Run a distributed solve that survives rank crashes by shrinking the grid
/// and resuming from the latest checkpoint. SPMD: call from every rank of a
/// [`chase_comm::run_grid`] region.
///
/// `make_h` rebuilds this rank's local panel for whatever grid context it
/// is handed — it is called once per attempt, so after a shrink it
/// re-slices the (deterministically generated) global matrix into the new
/// block-cyclic layout.
///
/// Returns `None` for ranks that leave the computation: the crash victim,
/// and survivors idled out by an awkward survivor count. Live ranks get the
/// final attempt's result plus the recovery accounting.
pub fn try_solve_elastic<T, F>(
    ctx: &RankCtx,
    backend: Backend,
    make_h: F,
    params: &Params,
) -> Option<ElasticOutcome<T>>
where
    T: Scalar + Reduce,
    T::Real: Reduce,
    T::Lo: Reduce,
    F: Fn(&RankCtx) -> DistHerm<T>,
{
    let mut owned: Option<RankCtx> = None;
    let mut p = params.clone();
    let mut prelude = RecoveryLog::default();
    let mut resume_from: Option<Snapshot> = None;
    let mut attempts = 0usize;
    let mut record_redist = false;
    loop {
        let cur: &RankCtx = owned.as_ref().unwrap_or(ctx);
        attempts += 1;
        let h = make_h(cur);
        if std::mem::take(&mut record_redist) {
            // Price the repartition: this rank's rebuilt H panel plus its
            // slice of the restored iterate.
            let bytes = h.local.bytes() + h.n_r() * p.ne() * std::mem::size_of::<T>();
            cur.record(EventKind::Redistribute {
                bytes: bytes as u64,
            });
        }
        let prelude_now = std::mem::take(&mut prelude);
        let snap = resume_from.take();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            try_solve_dist_inner(cur, backend, h, &p, None, snap.as_ref(), prelude_now)
        }));

        // Classify the attempt: done, or a death to recover from.
        let suspected: Vec<usize> = match attempt {
            Ok(out) => {
                let dead = match &out {
                    Err(ChaseError {
                        kind: ChaseErrorKind::RankDead { dead },
                        ..
                    }) => Some(dead.clone()),
                    _ => None,
                };
                match dead {
                    Some(d) => d,
                    None => {
                        let comm_events = cur
                            .ledger_snapshot()
                            .events()
                            .iter()
                            .filter(|e| e.kind.category() == Category::Comm)
                            .count();
                        return Some(ElasticOutcome {
                            result: out,
                            attempts,
                            shape: cur.shape,
                            comm_events,
                        });
                    }
                }
            }
            Err(payload) => {
                if payload.downcast_ref::<RankCrashPanic>().is_some() {
                    // This rank is the victim: it is already marked dead on
                    // the board; leave the computation.
                    return None;
                }
                match payload.downcast_ref::<chase_comm::RankDeadPanic>() {
                    Some(d) => d.dead.clone(),
                    None => resume_unwind(payload),
                }
            }
        };

        // --- Agreement: one deterministic round over the current world ---
        let agreed = match cur.world.agree_dead(&suspected) {
            Ok(d) => d,
            Err(t) => {
                return Some(ElasticOutcome {
                    result: Err(ChaseError {
                        kind: ChaseErrorKind::CollectiveTimeout(t),
                        iter: 0,
                        recovery: RecoveryLog::default(),
                    }),
                    attempts,
                    shape: cur.shape,
                    comm_events: 0,
                });
            }
        };

        // --- Deterministic crash→shrink→restore trail ---
        // Every stamp below is a pure function of the fault spec, the
        // agreed dead set, and the checkpoint directory contents, so
        // survivor logs stay bitwise identical (and replay exactly).
        let sites = p
            .inject
            .as_ref()
            .map(|s| s.crash_sites())
            .unwrap_or_default();
        let ev_iter = sites.iter().map(|i| i.iter as usize).max().unwrap_or(0);
        for inj in &sites {
            if agreed.contains(&inj.rank) {
                prelude.push(
                    inj.iter as usize,
                    RecoveryEventKind::Injected(InjectionRecord {
                        iter: inj.iter,
                        region: inj.region_name(),
                        rank: inj.rank,
                        what: "rank crashed (stops depositing into collectives)".into(),
                    }),
                );
            }
        }
        prelude.push(
            ev_iter,
            RecoveryEventKind::RankDead {
                dead: agreed.clone(),
            },
        );

        // --- Shrink ---
        let from_shape = cur.shape;
        // Idled out by an awkward survivor count: this rank leaves too.
        let new_ctx = shrink_ctx(cur, &agreed)?;
        prelude.push(
            ev_iter,
            RecoveryEventKind::GridShrunk {
                from: from_shape,
                to: new_ctx.shape,
            },
        );
        new_ctx.record(EventKind::GridShrink {
            from_ranks: from_shape.ranks() as u64,
            to_ranks: new_ctx.shape.ranks() as u64,
        });
        record_redist = true;

        // --- Restart decision: latest valid snapshot, or cold start ---
        // All survivors scan the same directory; corrupt files degrade to
        // the previous valid snapshot (typed rejections, never a panic).
        resume_from = p
            .checkpoint_dir
            .as_ref()
            .and_then(|dir| load_latest(dir).ok().flatten());
        let (ri, rl) = resume_from
            .as_ref()
            .map(|s| (s.iter, s.locked))
            .unwrap_or((0, 0));
        prelude.push(
            ev_iter,
            RecoveryEventKind::CheckpointRestored {
                iter: ri,
                locked: rl,
            },
        );

        // The survivors' world renumbers after the shrink, so re-arming the
        // crash would be ill-defined; every other planned fault stays live.
        p.inject = p.inject.as_ref().and_then(|s| s.without_rank_crash());
        owned = Some(new_ctx);
    }
}
