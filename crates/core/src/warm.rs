//! First-class warm starts for sequences of correlated eigenproblems.
//!
//! ChASE's raison d'être (Section 1) is *sequences*: in a DFT
//! self-consistency loop each Hamiltonian is a small perturbation of the
//! previous one, so the previous eigenvectors are an excellent initial
//! subspace and the previous spectral bounds remain valid up to a small
//! margin. [`WarmStart`] packages exactly that hand-off: the solver accepts
//! it directly (no caller-side padding loop) and skips the Lanczos
//! estimation phase when cached bounds are supplied.

use crate::result::ChaseResult;
use chase_linalg::{Matrix, RealScalar, Scalar, SpectralBounds};

/// The state one solve hands to the next solve of a correlated sequence.
///
/// `v0` holds `k` approximate eigenvectors as its columns (`n x k`, with
/// `1 <= k <= ne`); the solver pads the remaining `ne - k` search directions
/// with its seeded random block, so callers no longer hand-roll that loop.
/// `bounds` optionally carries the previous solve's refined spectral
/// estimates; when present the Lanczos phase is skipped entirely and the
/// upper bound is inflated by a small safety margin (the next matrix is a
/// perturbation, so its spectrum may poke slightly past the old `b_sup`).
#[derive(Debug, Clone)]
pub struct WarmStart<T: Scalar> {
    /// Global approximate eigenvectors (`n x k`, `k <= ne`).
    pub v0: Matrix<T>,
    /// Cached spectral bounds from the previous solve.
    pub bounds: Option<SpectralBounds<T::Real>>,
}

impl<T: Scalar> WarmStart<T> {
    /// Warm start from explicit vectors only (bounds re-estimated).
    pub fn from_vectors(v0: Matrix<T>) -> Self {
        Self { v0, bounds: None }
    }

    /// Build the warm-start payload for the next solve in a sequence from
    /// the per-rank results of an SPMD run (a single-element slice for
    /// serial solves). Assembles the full eigenvector block and reuses the
    /// refined spectral bounds.
    pub fn from_results(results: &[ChaseResult<T>]) -> Self {
        assert!(!results.is_empty());
        let v0 = ChaseResult::assemble_eigenvectors(results);
        Self {
            v0,
            bounds: Some(results[0].bounds),
        }
    }

    /// Bytes a session cache pays to keep this payload resident.
    pub fn bytes(&self) -> usize {
        self.v0.bytes() + std::mem::size_of::<SpectralBounds<T::Real>>()
    }

    /// The bounds the solver will actually filter with: cached bounds with
    /// `b_sup` inflated by `margin` (relative to the spectral span), so a
    /// perturbed Hamiltonian whose spectrum crept past the old estimate
    /// still lands inside the damped interval.
    pub fn inflated_bounds(&self, margin: f64) -> Option<SpectralBounds<T::Real>> {
        self.bounds.map(|b| {
            let span = (b.b_sup - b.mu_1).abs_r();
            SpectralBounds {
                mu_1: b.mu_1,
                mu_ne: b.mu_ne,
                b_sup: b.b_sup + span * T::Real::from_f64_r(margin),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_linalg::C64;

    #[test]
    fn inflation_extends_upper_bound_only() {
        let w = WarmStart::<C64> {
            v0: Matrix::zeros(4, 2),
            bounds: Some(SpectralBounds {
                mu_1: -1.0,
                mu_ne: 0.0,
                b_sup: 1.0,
            }),
        };
        let b = w.inflated_bounds(0.01).unwrap();
        assert_eq!(b.mu_1, -1.0);
        assert_eq!(b.mu_ne, 0.0);
        assert!((b.b_sup - 1.02).abs() < 1e-12);
    }

    #[test]
    fn from_vectors_has_no_bounds() {
        let w = WarmStart::<f64>::from_vectors(Matrix::zeros(3, 1));
        assert!(w.bounds.is_none());
        assert!(w.bytes() >= 3 * std::mem::size_of::<f64>());
    }
}
