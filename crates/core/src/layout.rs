//! Distributed data layout (Section 3.1 / Algorithm 2 of the paper).
//!
//! The Hermitian matrix `H` lives on a 2D rank grid in a **block** or
//! **block-cyclic** distribution (both supported by the paper, Section
//! 2.2): rank `(i, j)` owns the local matrix whose global row/column
//! indices are given by two [`IndexSet`]s. The rectangular vector blocks
//! come in two flavors:
//!
//! * **C-layout** (`C`, `C2`): rows of the global `N x ne` matrix are
//!   partitioned over the *column communicator* — rank `(i, j)` holds the
//!   rows of `H`'s row set `I_i`; identical across `j`.
//! * **B-layout** (`B`, `B2`): rows partitioned over the *row communicator*
//!   — rank `(i, j)` holds the rows of `H`'s column set `J_j`; identical
//!   across `i`.
//!
//! The Hermitian-trick HEMM maps C-layout into B-layout (via `H^H C` plus a
//! column-communicator allreduce) and back (via `H B` plus a row-communicator
//! allreduce) without any re-distribution (Section 2.2) — the index
//! arithmetic is the only thing the distribution changes.

use chase_comm::{Distribution, GridShape, IndexSet, RankCtx};
use chase_linalg::{Matrix, Scalar};

/// A rank's share of the distributed Hermitian matrix, plus its global index
/// sets.
pub struct DistHerm<T: Scalar> {
    /// Local `n_r x n_c` block.
    pub local: Matrix<T>,
    /// Global rows owned (`I_i`, determined by the grid row).
    pub row_set: IndexSet,
    /// Global columns owned (`J_j`, determined by the grid column).
    pub col_set: IndexSet,
    /// Global dimension `N`.
    pub n: usize,
    /// The distribution both dimensions follow.
    pub dist: Distribution,
    /// Currently applied diagonal shift (the filter shifts `H - c I` in
    /// place, exactly like ChASE's `shiftMatrix`).
    shift: T::Real,
    /// `(local_i, local_j, original_value)` of every global-diagonal entry
    /// inside this block, so shifting is exact and cannot drift.
    base_diag: Vec<(usize, usize, T)>,
}

impl<T: Scalar> DistHerm<T> {
    /// Carve this rank's block out of a replicated global matrix
    /// (block distribution).
    pub fn from_global(h: &Matrix<T>, ctx: &RankCtx) -> Self {
        Self::from_global_dist(h, ctx, Distribution::Block)
    }

    /// Carve this rank's block under an explicit distribution.
    pub fn from_global_dist(h: &Matrix<T>, ctx: &RankCtx, dist: Distribution) -> Self {
        assert_eq!(h.rows(), h.cols(), "H must be square");
        let n = h.rows();
        let row_set = IndexSet::new(n, ctx.shape.p, ctx.row, dist);
        let col_set = IndexSet::new(n, ctx.shape.q, ctx.col, dist);
        let local = Matrix::from_fn(row_set.len(), col_set.len(), |i, j| {
            h[(row_set.global(i), col_set.global(j))]
        });
        Self::with_base(local, row_set, col_set, n, dist)
    }

    /// Build from a deterministic element generator `f(global_i, global_j)`,
    /// avoiding any rank ever materializing the full matrix
    /// (block distribution).
    pub fn from_fn(n: usize, ctx: &RankCtx, f: impl FnMut(usize, usize) -> T) -> Self {
        Self::from_fn_dist(n, ctx, Distribution::Block, f)
    }

    /// Generator construction under an explicit distribution.
    pub fn from_fn_dist(
        n: usize,
        ctx: &RankCtx,
        dist: Distribution,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Self {
        let row_set = IndexSet::new(n, ctx.shape.p, ctx.row, dist);
        let col_set = IndexSet::new(n, ctx.shape.q, ctx.col, dist);
        let local = Matrix::from_fn(row_set.len(), col_set.len(), |i, j| {
            f(row_set.global(i), col_set.global(j))
        });
        Self::with_base(local, row_set, col_set, n, dist)
    }

    fn with_base(
        local: Matrix<T>,
        row_set: IndexSet,
        col_set: IndexSet,
        n: usize,
        dist: Distribution,
    ) -> Self {
        let mut base_diag = Vec::new();
        for li in 0..row_set.len() {
            let g = row_set.global(li);
            if let Some(lj) = col_set.local_of(g) {
                base_diag.push((li, lj, local[(li, lj)]));
            }
        }
        Self {
            local,
            row_set,
            col_set,
            n,
            dist,
            shift: <T::Real as Scalar>::zero(),
            base_diag,
        }
    }

    /// Local row count `n_r`.
    pub fn n_r(&self) -> usize {
        self.row_set.len()
    }

    /// Local column count `n_c`.
    pub fn n_c(&self) -> usize {
        self.col_set.len()
    }

    /// Set the diagonal shift so the local block represents `H - s I`
    /// (only blocks intersecting the global diagonal change).
    pub fn set_shift(&mut self, s: T::Real) {
        if s == self.shift {
            return;
        }
        for &(li, lj, base) in &self.base_diag {
            self.local[(li, lj)] = if s == <T::Real as Scalar>::zero() {
                base
            } else {
                base - T::from_real(s)
            };
        }
        self.shift = s;
    }

    /// Remove any shift, restoring the original `H` block.
    pub fn clear_shift(&mut self) {
        self.set_shift(<T::Real as Scalar>::zero());
    }

    pub fn current_shift(&self) -> T::Real {
        self.shift
    }

    /// A demoted (low-precision) replica of this block for the
    /// mixed-precision filter. Must be taken while no shift is applied: the
    /// filter shifts/unshifts its own replica, and demoting a shifted block
    /// would bake the f64 shift into the f32 diagonal.
    pub fn demote(&self) -> DistHerm<T::Lo> {
        assert!(
            self.shift == <T::Real as Scalar>::zero(),
            "demote() requires an unshifted H block"
        );
        let local = Matrix::from_fn(self.local.rows(), self.local.cols(), |i, j| {
            self.local[(i, j)].demote()
        });
        DistHerm::with_base(
            local,
            self.row_set.clone(),
            self.col_set.clone(),
            self.n,
            self.dist,
        )
    }
}

/// Row partition bookkeeping for one of the two layouts.
#[derive(Debug, Clone)]
pub struct RowDist {
    /// Global row count.
    pub n: usize,
    /// Row index set per communicator member.
    pub parts: Vec<IndexSet>,
}

impl RowDist {
    /// C-layout partition (over the column communicator: `p` parts).
    pub fn c_layout(n: usize, shape: GridShape, dist: Distribution) -> Self {
        Self {
            n,
            parts: (0..shape.p)
                .map(|i| IndexSet::new(n, shape.p, i, dist))
                .collect(),
        }
    }

    /// B-layout partition (over the row communicator: `q` parts).
    pub fn b_layout(n: usize, shape: GridShape, dist: Distribution) -> Self {
        Self {
            n,
            parts: (0..shape.q)
                .map(|j| IndexSet::new(n, shape.q, j, dist))
                .collect(),
        }
    }

    /// Reassemble a full matrix from per-member blocks gathered in member
    /// order (`gathered` is the concatenation of column-major blocks).
    pub fn assemble<T: Scalar>(&self, gathered: &[T], cols: usize) -> Matrix<T> {
        let mut full = Matrix::zeros(self.n, cols);
        let mut offset = 0;
        for part in &self.parts {
            let rows = part.len();
            for j in 0..cols {
                for (i, g) in part.iter().enumerate() {
                    full[(g, j)] = gathered[offset + j * rows + i];
                }
            }
            offset += rows * cols;
        }
        assert_eq!(offset, gathered.len(), "gathered size mismatch");
        full
    }
}

/// Per-rank memory report auditing Eq. (2) of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryReport {
    /// Bytes actually held by this rank's H block.
    pub h_bytes: usize,
    /// Bytes in C-layout vector buffers (C and C2).
    pub c_bytes: usize,
    /// Bytes in B-layout vector buffers (B and B2).
    pub b_bytes: usize,
    /// Bytes in the redundant `ne x ne` quotient.
    pub a_bytes: usize,
    /// For the legacy LMS layout: the redundant full-size `N x ne` buffers.
    pub redundant_bytes: usize,
}

impl MemoryReport {
    pub fn total(&self) -> usize {
        self.h_bytes + self.c_bytes + self.b_bytes + self.a_bytes + self.redundant_bytes
    }

    /// Eq. (2) prediction in *elements*:
    /// `N^2/(p q) + 2 N ne / p + 2 N ne / q + ne^2`.
    pub fn eq2_elements(n: usize, ne: usize, shape: GridShape) -> usize {
        n * n / (shape.p * shape.q) + 2 * n * ne / shape.p + 2 * n * ne / shape.q + ne * ne
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_comm::{run_grid, solo_ctx};
    use chase_linalg::C64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_hermitian(n: usize, seed: u64) -> Matrix<C64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x = Matrix::<C64>::random(n, n, &mut rng);
        let xh = x.adjoint();
        Matrix::from_fn(n, n, |i, j| (x[(i, j)] + xh[(i, j)]).scale(0.5))
    }

    #[test]
    fn blocks_partition_h() {
        let h = random_hermitian(11, 1);
        for dist in [Distribution::Block, Distribution::BlockCyclic { block: 2 }] {
            let href = &h;
            let out = run_grid(GridShape::new(2, 3), move |ctx| {
                let d = DistHerm::from_global_dist(href, ctx, dist);
                (d.row_set.clone(), d.col_set.clone(), d.local.clone())
            });
            let mut seen = 0;
            for (rows, cols, local) in out.results {
                for (li, g_i) in rows.iter().enumerate() {
                    for (lj, g_j) in cols.iter().enumerate() {
                        assert_eq!(local[(li, lj)], h[(g_i, g_j)]);
                    }
                }
                seen += rows.len() * cols.len();
            }
            assert_eq!(seen, 121, "{dist:?}");
        }
    }

    #[test]
    fn from_fn_matches_from_global() {
        let h = random_hermitian(9, 2);
        let href = &h;
        for dist in [Distribution::Block, Distribution::BlockCyclic { block: 2 }] {
            let out = run_grid(GridShape::new(3, 3), move |ctx| {
                let a = DistHerm::from_global_dist(href, ctx, dist);
                let b = DistHerm::from_fn_dist(9, ctx, dist, |i, j| href[(i, j)]);
                a.local.max_abs_diff(&b.local)
            });
            for d in out.results {
                assert_eq!(d, 0.0);
            }
        }
    }

    #[test]
    fn shift_only_touches_diagonal_entries() {
        let h = random_hermitian(8, 3);
        let href = &h;
        for dist in [Distribution::Block, Distribution::BlockCyclic { block: 3 }] {
            let out = run_grid(GridShape::new(2, 2), move |ctx| {
                let mut d = DistHerm::from_global_dist(href, ctx, dist);
                d.set_shift(2.5);
                let shifted = d.local.clone();
                let (rows, cols) = (d.row_set.clone(), d.col_set.clone());
                d.clear_shift();
                let restored = d.local.clone();
                (rows, cols, shifted, restored)
            });
            for (rows, cols, shifted, restored) in out.results {
                for (li, g_i) in rows.iter().enumerate() {
                    for (lj, g_j) in cols.iter().enumerate() {
                        let expect = if g_i == g_j {
                            h[(g_i, g_j)] - C64::from_f64(2.5)
                        } else {
                            h[(g_i, g_j)]
                        };
                        assert_eq!(shifted[(li, lj)], expect, "{dist:?}");
                        assert_eq!(restored[(li, lj)], h[(g_i, g_j)]);
                    }
                }
            }
        }
    }

    #[test]
    fn shift_is_exact_after_retargeting() {
        let h = random_hermitian(5, 4);
        let ctx = solo_ctx();
        let mut d = DistHerm::from_global(&h, &ctx);
        d.set_shift(1.0);
        d.set_shift(1.0); // no-op
        d.set_shift(3.0);
        assert_eq!(d.local[(0, 0)], h[(0, 0)] - C64::from_f64(3.0));
        d.clear_shift();
        assert_eq!(d.local.max_abs_diff(&h), 0.0);
    }

    #[test]
    fn rowdist_assemble_roundtrip() {
        let shape = GridShape::new(3, 2);
        for dist in [Distribution::Block, Distribution::BlockCyclic { block: 2 }] {
            let rd = RowDist::c_layout(10, shape, dist);
            let full = Matrix::<f64>::from_fn(10, 4, |i, j| (i * 10 + j) as f64);
            // Simulate an allgather: concatenate members' blocks in order.
            let mut gathered = Vec::new();
            for part in &rd.parts {
                let block = full.select_rows(part.iter());
                gathered.extend_from_slice(block.as_slice());
            }
            let back = rd.assemble(&gathered, 4);
            assert_eq!(back.max_abs_diff(&full), 0.0, "{dist:?}");
        }
    }

    #[test]
    fn demoted_replica_matches_elementwise() {
        use chase_linalg::C32;
        let h = random_hermitian(7, 6);
        let ctx = solo_ctx();
        let mut d = DistHerm::from_global(&h, &ctx);
        let lo = d.demote();
        assert_eq!(lo.n, d.n);
        assert_eq!(lo.n_r(), d.n_r());
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(lo.local[(i, j)], h[(i, j)].demote());
            }
        }
        // The replica carries its own shift machinery in Lo precision.
        let mut lo = lo;
        lo.set_shift(0.5f32);
        assert_eq!(lo.local[(0, 0)], h[(0, 0)].demote() - C32::from_f64(0.5));
        lo.clear_shift();
        assert_eq!(lo.local[(0, 0)], h[(0, 0)].demote());
        // Demoting a shifted block is a caller bug.
        d.set_shift(1.0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.demote()));
        assert!(r.is_err());
    }

    #[test]
    fn eq2_formula() {
        let shape = GridShape::new(2, 2);
        // N=16, ne=4: 256/4 + 2*64/2 + 2*64/2 + 16 = 64+64+64+16 = 208
        assert_eq!(MemoryReport::eq2_elements(16, 4, shape), 208);
    }
}
