//! Distributed QR factorizations (Algorithms 3 and 4).
//!
//! The 1D-CAQR runs on the C-layout block within each column communicator:
//! a local Gram (`SYRK`), one allreduce, a redundant Cholesky (`POTRF`) and a
//! local triangular solve (`TRSM`) — communication-optimal, with addition as
//! the reduction operator (the reason the paper prefers CholeskyQR over
//! TSQR). The switchboard picks a variant from the estimated condition
//! number; Householder QR (ScaLAPACK's role) remains as baseline and
//! fallback, realized here by gathering the block and factorizing
//! redundantly.

use crate::layout::RowDist;
use crate::params::QrStrategy;
use chase_comm::{Communicator, Reduce};
use chase_device::Device;
use chase_linalg::{Matrix, NotPositiveDefinite, Scalar};
use std::fmt;

/// Which QR implementation actually ran (recorded per iteration for Table 2
/// and the Fig. 1 narrative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QrVariant {
    CholeskyQr1,
    CholeskyQr2,
    ShiftedCholeskyQr2,
    Householder,
}

impl QrVariant {
    pub fn name(self) -> &'static str {
        match self {
            QrVariant::CholeskyQr1 => "CholeskyQR1",
            QrVariant::CholeskyQr2 => "CholeskyQR2",
            QrVariant::ShiftedCholeskyQr2 => "sCholeskyQR2",
            QrVariant::Householder => "HHQR",
        }
    }
}

/// Condition threshold above which shifted CholeskyQR2 is required
/// (`O(u^{-1/2}) ~ 1e8` in double precision; Algorithm 4, line 2).
pub const COND_SHIFTED: f64 = 1e8;
/// Condition threshold below which a single CholeskyQR pass suffices
/// (Algorithm 4, line 13; "in practice set to 20").
pub const COND_SINGLE: f64 = 20.0;

/// Why a CholeskyQR rung failed.
///
/// `NonFiniteGram` exists because `potrf` alone cannot catch a poisoned
/// Gram matrix: its pivot test `piv <= 0` is *false* for NaN, so Cholesky
/// on a NaN Gram silently "succeeds" with a garbage factor. The explicit
/// finite check before `potrf` is the guard that turns a corrupted
/// collective into a typed, recoverable error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QrError {
    /// The (finite) Gram matrix was not numerically positive definite —
    /// the classic CholeskyQR breakdown of Algorithm 4.
    NotPositiveDefinite { pivot: usize },
    /// The Gram matrix contained NaN/Inf (corrupted block or collective).
    NonFiniteGram { row: usize, col: usize },
}

impl fmt::Display for QrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QrError::NotPositiveDefinite { pivot } => {
                write!(f, "Gram matrix not positive definite at pivot {pivot}")
            }
            QrError::NonFiniteGram { row, col } => {
                write!(f, "non-finite Gram entry at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for QrError {}

impl From<NotPositiveDefinite> for QrError {
    fn from(e: NotPositiveDefinite) -> Self {
        QrError::NotPositiveDefinite { pivot: e.pivot }
    }
}

/// Guard: the reduced Gram matrix must be entirely finite before it is
/// handed to `potrf` (see [`QrError::NonFiniteGram`]).
fn check_gram_finite<T: Scalar>(g: &Matrix<T>) -> Result<(), QrError> {
    for j in 0..g.cols() {
        for (i, v) in g.col(j).iter().enumerate() {
            if !v.is_finite() {
                return Err(QrError::NonFiniteGram { row: i, col: j });
            }
        }
    }
    Ok(())
}

/// Algorithm 3: `cholDegree` repetitions of {Gram, allreduce, POTRF, TRSM}
/// on the row-distributed block `x`.
pub fn cholesky_qr<T: Scalar + Reduce>(
    dev: &Device<'_>,
    comm: &Communicator,
    x: &mut Matrix<T>,
    repetitions: usize,
) -> Result<(), QrError> {
    for _ in 0..repetitions {
        let mut g = dev.gram(x.as_ref());
        dev.allreduce_sum(comm, g.as_mut_slice());
        check_gram_finite(&g)?;
        let u = dev.potrf(&g)?;
        dev.trsm(x.as_mut(), &u);
    }
    Ok(())
}

/// Shifted CholeskyQR2 (Algorithm 4, lines 3–12): factor `G + s I` with
/// `s = 11 (m n + n (n+1)) u ||X||_F^2`, solve once, then run CholeskyQR2.
///
/// Returns `Err` if even the shifted Gram matrix is not positive definite
/// (the corner case that falls back to Householder).
pub fn shifted_cholesky_qr2<T: Scalar + Reduce>(
    dev: &Device<'_>,
    comm: &Communicator,
    x: &mut Matrix<T>,
    m_global: usize,
) -> Result<(), QrError> {
    let mut g = dev.gram(x.as_ref());
    dev.allreduce_sum(comm, g.as_mut_slice());
    check_gram_finite(&g)?;
    // ||X||_F^2 = trace(G): already globally reduced, no extra collective.
    let mut frob_sqr = <T::Real as Scalar>::zero();
    for i in 0..g.rows() {
        frob_sqr += g[(i, i)].re();
    }
    let s = chase_linalg::shifted_cholesky_shift::<T::Real>(m_global, g.rows(), frob_sqr);
    let shifted = chase_linalg::add_shift(&g, s);
    let u = dev.potrf(&shifted)?;
    dev.trsm(x.as_mut(), &u);
    cholesky_qr(dev, comm, x, 2)
}

/// Householder QR over the communicator: gather the distributed block,
/// factor redundantly, keep the local rows. This is both the `AlwaysHHQR`
/// baseline of Table 2 (ScaLAPACK-HHQR's role) and the robustness fallback
/// of Algorithm 4 line 9.
pub fn householder_qr_dist<T: Scalar>(
    dev: &Device<'_>,
    comm: &Communicator,
    x: &mut Matrix<T>,
    dist: &RowDist,
) {
    let full = if comm.size() == 1 {
        x.clone()
    } else {
        let gathered = dev.allgather(comm, x.as_slice());
        dist.assemble(&gathered, x.cols())
    };
    let q = dev.hhqr_q(&full);
    let my = &dist.parts[comm.rank()];
    *x = q.select_rows(my.iter());
}

/// The rung the switchboard starts at (Algorithm 4's condition-number
/// dispatch; pure — the proptest oracle for the switchboard).
pub fn ladder_start(est_cond: f64, strategy: QrStrategy) -> QrVariant {
    match strategy {
        QrStrategy::AlwaysHouseholder => QrVariant::Householder,
        QrStrategy::AlwaysCholeskyQr1 => QrVariant::CholeskyQr1,
        QrStrategy::AlwaysCholeskyQr2 => QrVariant::CholeskyQr2,
        QrStrategy::Auto => {
            if est_cond > COND_SHIFTED {
                QrVariant::ShiftedCholeskyQr2
            } else if est_cond < COND_SINGLE {
                QrVariant::CholeskyQr1
            } else {
                QrVariant::CholeskyQr2
            }
        }
    }
}

/// The next (more robust, more expensive) rung after `v` fails:
/// CholeskyQR1 → CholeskyQR2 → shifted CholeskyQR2 → HHQR → (none).
pub fn next_rung(v: QrVariant) -> Option<QrVariant> {
    match v {
        QrVariant::CholeskyQr1 => Some(QrVariant::CholeskyQr2),
        QrVariant::CholeskyQr2 => Some(QrVariant::ShiftedCholeskyQr2),
        QrVariant::ShiftedCholeskyQr2 => Some(QrVariant::Householder),
        QrVariant::Householder => None,
    }
}

/// One rung execution inside [`qr_ladder`]: which variant ran and how it
/// ended (`None` = success).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderAttempt {
    pub variant: QrVariant,
    pub error: Option<QrError>,
}

/// Algorithm 4 with an explicit recovery ladder: start at the rung the
/// condition estimate picks, and on every breakdown restore `x` from a
/// pre-factorization backup and escalate one rung. Householder QR is the
/// terminal rung and cannot break down, so the ladder always produces an
/// orthonormal factor. Returns the winning variant plus the full attempt
/// trail (the solver folds failures into its `RecoveryLog`).
pub fn qr_ladder<T: Scalar + Reduce>(
    dev: &Device<'_>,
    comm: &Communicator,
    x: &mut Matrix<T>,
    dist: &RowDist,
    est_cond: f64,
    strategy: QrStrategy,
) -> (QrVariant, Vec<LadderAttempt>) {
    let mut attempts = Vec::new();
    let mut variant = ladder_start(est_cond, strategy);
    // The fallible rungs mutate x in place (TRSM); keep the filtered block
    // so each escalation refactors the original, not a half-solved wreck.
    let backup = x.clone();
    loop {
        let outcome = match variant {
            QrVariant::CholeskyQr1 => cholesky_qr(dev, comm, x, 1),
            QrVariant::CholeskyQr2 => cholesky_qr(dev, comm, x, 2),
            QrVariant::ShiftedCholeskyQr2 => shifted_cholesky_qr2(dev, comm, x, dist.n),
            QrVariant::Householder => {
                householder_qr_dist(dev, comm, x, dist);
                Ok(())
            }
        };
        match outcome {
            Ok(()) => {
                attempts.push(LadderAttempt {
                    variant,
                    error: None,
                });
                return (variant, attempts);
            }
            Err(e) => {
                attempts.push(LadderAttempt {
                    variant,
                    error: Some(e),
                });
                x.as_mut_slice().copy_from_slice(backup.as_slice());
                variant = next_rung(variant).expect("Householder QR cannot break down");
            }
        }
    }
}

/// Algorithm 4: the flexible 1D-CAQR driven by the estimated condition
/// number. Returns the variant that produced the final factor. Thin wrapper
/// over [`qr_ladder`] that discards the attempt trail.
pub fn flexible_qr<T: Scalar + Reduce>(
    dev: &Device<'_>,
    comm: &Communicator,
    x: &mut Matrix<T>,
    dist: &RowDist,
    est_cond: f64,
    strategy: QrStrategy,
) -> QrVariant {
    qr_ladder(dev, comm, x, dist, est_cond, strategy).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_comm::{run_grid, solo_ctx, GridShape};
    use chase_device::Backend;
    use chase_linalg::{gemm_new, gram, random_orthonormal, Op, C64};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Tall block with prescribed condition number.
    fn conditioned(m: usize, n: usize, kappa: f64, seed: u64) -> Matrix<C64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let u = random_orthonormal::<C64, _>(m, n, &mut rng);
        let v = random_orthonormal::<C64, _>(n, n, &mut rng);
        let mut us = u.clone();
        for j in 0..n {
            let s = kappa.powf(-(j as f64) / (n - 1) as f64);
            chase_linalg::blas1::rscal(s, us.col_mut(j));
        }
        gemm_new(Op::None, Op::ConjTrans, &us, &v)
    }

    fn orth_error(x: &Matrix<C64>) -> f64 {
        gram(x.as_ref()).orthogonality_error()
    }

    #[test]
    fn cholesky_qr1_well_conditioned() {
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let mut x = conditioned(40, 6, 5.0, 1);
        let x0 = x.clone();
        cholesky_qr(&dev, &ctx.world, &mut x, 1).unwrap();
        assert!(orth_error(&x) < 1e-12);
        // Q spans the same space: Q^H X0 has full rank (just sanity-check
        // reconstruction via projector: X0 = Q (Q^H X0)).
        let r = gemm_new(Op::ConjTrans, Op::None, &x, &x0);
        let back = gemm_new(Op::None, Op::None, &x, &r);
        assert!(back.max_abs_diff(&x0) < 1e-10);
    }

    #[test]
    fn cholesky_qr2_moderately_conditioned() {
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let mut x = conditioned(50, 8, 1e6, 2);
        cholesky_qr(&dev, &ctx.world, &mut x, 2).unwrap();
        assert!(orth_error(&x) < 1e-12);
    }

    #[test]
    fn cholesky_qr1_loses_orthogonality_where_qr2_does_not() {
        // kappa = 1e6: one pass leaves ~kappa^2 * eps ~ 1e-4 error.
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let mut x1 = conditioned(50, 8, 1e6, 3);
        let mut x2 = x1.clone();
        cholesky_qr(&dev, &ctx.world, &mut x1, 1).unwrap();
        cholesky_qr(&dev, &ctx.world, &mut x2, 2).unwrap();
        assert!(
            orth_error(&x1) > 1e-8,
            "QR1 should be visibly non-orthogonal"
        );
        assert!(orth_error(&x2) < 1e-12);
    }

    #[test]
    fn shifted_qr2_survives_extreme_conditioning() {
        // kappa = 1e12 > u^{-1/2}: plain CholeskyQR must fail POTRF, the
        // shifted variant must succeed and restore orthogonality.
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let mut x = conditioned(60, 8, 1e12, 4);
        assert!(
            cholesky_qr(&dev, &ctx.world, &mut x.clone(), 1).is_err()
                || orth_error(&{
                    let mut y = x.clone();
                    cholesky_qr(&dev, &ctx.world, &mut y, 1).ok();
                    y
                }) > 1e-2,
            "plain CholeskyQR should break down at kappa 1e12"
        );
        shifted_cholesky_qr2(&dev, &ctx.world, &mut x, 60).unwrap();
        assert!(orth_error(&x) < 1e-11, "orth err {}", orth_error(&x));
    }

    #[test]
    fn auto_switchboard_picks_by_condition() {
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let dist = RowDist {
            n: 40,
            parts: vec![(0..40).into()],
        };

        let mut x = conditioned(40, 5, 2.0, 5);
        let v = flexible_qr(&dev, &ctx.world, &mut x, &dist, 3.0, QrStrategy::Auto);
        assert_eq!(v, QrVariant::CholeskyQr1);

        let mut x = conditioned(40, 5, 1e5, 6);
        let v = flexible_qr(&dev, &ctx.world, &mut x, &dist, 1e5, QrStrategy::Auto);
        assert_eq!(v, QrVariant::CholeskyQr2);
        assert!(orth_error(&x) < 1e-12);

        let mut x = conditioned(40, 5, 1e10, 7);
        let v = flexible_qr(&dev, &ctx.world, &mut x, &dist, 1e10, QrStrategy::Auto);
        assert_eq!(v, QrVariant::ShiftedCholeskyQr2);
        assert!(orth_error(&x) < 1e-11);
    }

    #[test]
    fn householder_strategy_and_fallback() {
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let dist = RowDist {
            n: 30,
            parts: vec![(0..30).into()],
        };
        let mut x = conditioned(30, 4, 1e3, 8);
        let v = flexible_qr(
            &dev,
            &ctx.world,
            &mut x,
            &dist,
            1e3,
            QrStrategy::AlwaysHouseholder,
        );
        assert_eq!(v, QrVariant::Householder);
        assert!(orth_error(&x) < 1e-12);
    }

    #[test]
    fn distributed_cholesky_qr_matches_serial() {
        let m = 24;
        let n = 5;
        let xg = conditioned(m, n, 100.0, 9);
        // Serial reference.
        let ctx = solo_ctx();
        let dev = Device::new(&ctx, Backend::Nccl);
        let mut xs = xg.clone();
        cholesky_qr(&dev, &ctx.world, &mut xs, 2).unwrap();

        for parts in [2usize, 3] {
            let (xg, xs) = (&xg, &xs);
            let out = run_grid(GridShape::new(parts, 1), move |ctx| {
                let dev = Device::new(ctx, Backend::Std);
                let dist = RowDist::c_layout(m, ctx.shape, chase_comm::Distribution::Block);
                let my = dist.parts[ctx.col_comm.rank()].clone();
                let mut x = xg.select_rows(my.iter());
                cholesky_qr(&dev, &ctx.col_comm, &mut x, 2).unwrap();
                x.max_abs_diff(&xs.select_rows(my.iter()))
            });
            for d in out.results {
                assert!(d < 1e-12, "{parts} parts: diff {d}");
            }
        }
    }

    #[test]
    fn distributed_householder_matches_shape() {
        let m = 20;
        let n = 4;
        let xg = conditioned(m, n, 50.0, 10);
        let xg = &xg;
        let out = run_grid(GridShape::new(2, 1), move |ctx| {
            let dev = Device::new(ctx, Backend::Std);
            let dist = RowDist::c_layout(m, ctx.shape, chase_comm::Distribution::Block);
            let my = dist.parts[ctx.col_comm.rank()].clone();
            let mut x = xg.select_rows(my.iter());
            householder_qr_dist(&dev, &ctx.col_comm, &mut x, &dist);
            (my.as_range().unwrap(), x)
        });
        // Stack the blocks and verify global orthonormality.
        let mut full = Matrix::<C64>::zeros(m, n);
        for (my, x) in out.results {
            full.set_sub(my.start, 0, &x);
        }
        assert!(orth_error(&full) < 1e-12);
    }
}
