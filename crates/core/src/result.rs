//! Solver output, per-iteration statistics, and the fault-recovery record.

use crate::qr::QrVariant;
use chase_comm::{GridShape, IndexSet, WaitTimeout};
use chase_faults::InjectionRecord;
use chase_linalg::{Matrix, Scalar, SpectralBounds};
use std::fmt;

/// Diagnostics for one outer ChASE iteration — the raw material for Fig. 1
/// (condition numbers), Table 2 (MatVecs/iterations) and the convergence
/// narrative of Section 4.
#[derive(Debug, Clone)]
pub struct IterStats {
    /// 1-based outer iteration index.
    pub iter: usize,
    /// Algorithm 5 estimate of `kappa_2` of the filtered block.
    pub est_cond: f64,
    /// Exact `kappa_2` (one-sided Jacobi), when tracking is enabled.
    pub true_cond: Option<f64>,
    /// QR implementation the switchboard chose.
    pub qr_variant: QrVariant,
    /// MatVec column-applications spent in this iteration's filter.
    pub matvecs: u64,
    /// Columns newly locked this iteration.
    pub new_locked: usize,
    /// Total locked after this iteration.
    pub locked: usize,
    /// Extremes of the active residuals after this iteration.
    pub min_res: f64,
    pub max_res: f64,
    /// Largest Chebyshev degree used this iteration.
    pub max_degree: usize,
    /// Whether this iteration's filter ran in demoted precision (`T::Lo`).
    pub low_precision: bool,
}

/// One detection or recovery action the guarded solver took. Deterministic
/// (no wall clock, no addresses) and fully `Eq` (float payloads are stored
/// as raw bits — NaN-carrying events must still compare equal across two
/// identical runs), so the chaos suite can assert bitwise log replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEventKind {
    /// A planned fault fired (relayed from the per-rank `FaultPlan`).
    Injected(InjectionRecord),
    /// The post-filter finite guard found poisoned columns.
    NonFiniteBlock { cols: usize },
    /// Poisoned columns were restored from the pre-filter copy and
    /// re-filtered with a degree bump.
    Refiltered {
        cols: usize,
        degree: usize,
        attempt: usize,
    },
    /// A CholeskyQR rung broke down (Gram not PD or non-finite).
    QrBreakdown {
        variant: &'static str,
        detail: String,
    },
    /// The ladder escalated from one rung to the next.
    QrEscalated {
        from: &'static str,
        to: &'static str,
    },
    /// Ritz values / residuals regressed to non-finite after Rayleigh–Ritz.
    /// `value_bits` is the offending f64's raw bit pattern (NaN-safe `Eq`).
    ResidualRegression { col: usize, value_bits: u64 },
    /// Locked vectors were rolled back to the last checkpoint and the
    /// active subspace restarted.
    LockedRollback { kept: usize, restarted: usize },
    /// The grid's replicas stopped agreeing (e.g. one column communicator's
    /// QR escalated while the others' did not): the active subspace is
    /// restarted to restore SPMD consistency.
    ReplicaDivergence { stage: &'static str },
    /// A nonblocking collective wait timed out.
    Timeout { op_id: u64, timeout_ms: u64 },
    /// A low-precision filter output went non-finite (e.g. f32 overflow):
    /// the poisoned columns were restored and re-filtered at full precision
    /// — the precision rung sits *before* the degree-bump rung and does not
    /// consume a re-filter attempt.
    PrecisionEscalated { cols: usize },
    /// Survivors agreed (via the deterministic agreement round) that these
    /// world ranks stopped depositing into collectives. Ranks are numbered
    /// in the world the crash happened in.
    RankDead { dead: Vec<usize> },
    /// The grid was rebuilt over the survivors with a remapped shape.
    GridShrunk { from: GridShape, to: GridShape },
    /// A periodic/on-demand checkpoint snapshot was written.
    CheckpointSaved { iter: usize, locked: usize },
    /// The solve resumed from a checkpoint (on the shrunk grid after a
    /// crash, or cold-started at iteration 0 when none was found).
    CheckpointRestored { iter: usize, locked: usize },
}

impl fmt::Display for RecoveryEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryEventKind::Injected(r) => write!(f, "injected: {r}"),
            RecoveryEventKind::NonFiniteBlock { cols } => {
                write!(f, "non-finite filtered block ({cols} column(s))")
            }
            RecoveryEventKind::Refiltered {
                cols,
                degree,
                attempt,
            } => write!(
                f,
                "re-filtered {cols} column(s) at degree {degree} (attempt {attempt})"
            ),
            RecoveryEventKind::QrBreakdown { variant, detail } => {
                write!(f, "{variant} breakdown: {detail}")
            }
            RecoveryEventKind::QrEscalated { from, to } => {
                write!(f, "QR escalated {from} -> {to}")
            }
            RecoveryEventKind::ResidualRegression { col, value_bits } => {
                write!(
                    f,
                    "residual regression at column {col} (value {})",
                    f64::from_bits(*value_bits)
                )
            }
            RecoveryEventKind::LockedRollback { kept, restarted } => {
                write!(
                    f,
                    "rolled back to {kept} locked, restarted {restarted} active"
                )
            }
            RecoveryEventKind::ReplicaDivergence { stage } => {
                write!(f, "replica divergence detected at {stage}")
            }
            RecoveryEventKind::Timeout { op_id, timeout_ms } => {
                write!(f, "collective op {op_id} timed out after {timeout_ms} ms")
            }
            RecoveryEventKind::PrecisionEscalated { cols } => {
                write!(
                    f,
                    "escalated {cols} column(s) from demoted to full precision"
                )
            }
            RecoveryEventKind::RankDead { dead } => {
                write!(f, "agreed dead rank(s): {dead:?}")
            }
            RecoveryEventKind::GridShrunk { from, to } => {
                write!(
                    f,
                    "grid shrunk {}x{} -> {}x{}",
                    from.p, from.q, to.p, to.q
                )
            }
            RecoveryEventKind::CheckpointSaved { iter, locked } => {
                write!(f, "checkpoint saved at iter {iter} ({locked} locked)")
            }
            RecoveryEventKind::CheckpointRestored { iter, locked } => {
                write!(f, "checkpoint restored at iter {iter} ({locked} locked)")
            }
        }
    }
}

/// A [`RecoveryEventKind`] stamped with the outer iteration it happened in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// 1-based outer iteration (0 = outside the loop).
    pub iter: usize,
    pub kind: RecoveryEventKind,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iter {}: {}", self.iter, self.kind)
    }
}

/// The ordered record of everything the guard layer saw and did during one
/// solve. Empty on a fault-free run with guards enabled.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryLog {
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    pub fn push(&mut self, iter: usize, kind: RecoveryEventKind) {
        self.events.push(RecoveryEvent { iter, kind });
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// True if any event matches the predicate.
    pub fn any(&self, f: impl Fn(&RecoveryEventKind) -> bool) -> bool {
        self.events.iter().any(|e| f(&e.kind))
    }
}

impl fmt::Display for RecoveryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Why a guarded solve gave up instead of returning a (possibly wrong)
/// result. Carries the recovery log accumulated up to the abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseError {
    pub kind: ChaseErrorKind,
    /// Iteration the solver aborted in (0 = outside the loop).
    pub iter: usize,
    pub recovery: RecoveryLog,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseErrorKind {
    /// A collective never completed (wedged peer / dropped post).
    CollectiveTimeout(WaitTimeout),
    /// One or more peer ranks died mid-collective (the agreed dead set, in
    /// the world numbering of the grid the solve ran on). The elastic
    /// driver catches this kind, shrinks the grid and resumes from the
    /// latest checkpoint.
    RankDead { dead: Vec<usize> },
    /// A nonblocking wait named an operation that was never posted (or was
    /// dropped by a fault hook before posting).
    UnknownCollective { op_id: u64 },
    /// Corruption persisted through every re-filter retry.
    UnrecoverableNonFinite,
    /// The final cross-rank verification of the returned eigenpairs failed.
    VerificationFailed { detail: String },
    /// User-supplied spectral data produced a degenerate filter interval
    /// (`e <= 0` or non-finite bounds) — reachable from stale warm-start
    /// bounds or a corrupt workload file.
    BadSpectrum { detail: String },
    /// The parameter set failed validation (typed counterpart of the
    /// historic `Params::validate` panics, so one bad job cannot abort a
    /// whole serve run).
    InvalidParams { detail: String },
    /// A checkpoint restore was requested but the snapshot was corrupt or
    /// belongs to a different problem.
    BadCheckpoint { detail: String },
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ChaseErrorKind::CollectiveTimeout(t) => {
                write!(f, "iter {}: {t}", self.iter)
            }
            ChaseErrorKind::RankDead { dead } => {
                write!(f, "iter {}: peer rank(s) {dead:?} died", self.iter)
            }
            ChaseErrorKind::UnknownCollective { op_id } => {
                write!(f, "iter {}: unknown collective op {op_id}", self.iter)
            }
            ChaseErrorKind::UnrecoverableNonFinite => write!(
                f,
                "iter {}: non-finite data persisted through all re-filter retries",
                self.iter
            ),
            ChaseErrorKind::VerificationFailed { detail } => {
                write!(
                    f,
                    "iter {}: result verification failed: {detail}",
                    self.iter
                )
            }
            ChaseErrorKind::BadSpectrum { detail } => {
                write!(f, "iter {}: bad spectrum: {detail}", self.iter)
            }
            ChaseErrorKind::InvalidParams { detail } => {
                write!(f, "invalid parameters: {detail}")
            }
            ChaseErrorKind::BadCheckpoint { detail } => {
                write!(f, "checkpoint restore failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ChaseError {}

/// Final solver output (per rank: eigenvector rows are this rank's C-layout
/// block; eigenvalues and scalars are identical on every rank).
#[derive(Debug, Clone)]
pub struct ChaseResult<T: Scalar> {
    /// The `nev` lowest eigenvalues, ascending.
    pub eigenvalues: Vec<T::Real>,
    /// Residual norms of the returned pairs.
    pub residuals: Vec<T::Real>,
    /// Local rows of the eigenvector block (`n_r x nev`).
    pub eigenvectors_local: Matrix<T>,
    /// Global row indices of the local block.
    pub rows: IndexSet,
    /// Global problem size.
    pub n: usize,
    /// Outer iterations executed.
    pub iterations: usize,
    /// Total filter MatVecs (the paper's "MatVecs" column).
    pub matvecs: u64,
    /// MatVecs that ran in demoted precision (subset of `matvecs`; zero in
    /// full-precision mode and for natively 32-bit scalars).
    pub lowprec_matvecs: u64,
    /// Whether all `nev` pairs converged within `max_iter`.
    pub converged: bool,
    /// Per-iteration diagnostics.
    pub stats: Vec<IterStats>,
    /// Spectral-norm scale used for the convergence test.
    pub norm_h: f64,
    /// Refined spectral bounds at exit (`mu_1`/`mu_ne` from the final Ritz
    /// values, `b_sup` as filtered with): the hand-off for warm-starting
    /// the next solve of a correlated sequence.
    pub bounds: SpectralBounds<T::Real>,
    /// Whether this solve started from a [`crate::WarmStart`] with cached
    /// bounds (i.e. skipped the Lanczos estimation phase).
    pub warm_started: bool,
    /// Everything the guard layer detected and repaired along the way
    /// (empty on a clean run).
    pub recovery: RecoveryLog,
    /// The resolved solve plan this run executed under, when one was
    /// applied ([`crate::Params::apply_plan`]): scheduling provenance for
    /// reproducibility audits. `None` for plain manually-knobbed solves.
    pub plan: Option<crate::plan::SolvePlan>,
}

impl<T: Scalar> ChaseResult<T> {
    /// Assemble full eigenvectors from the per-rank results of an SPMD run.
    ///
    /// The C-layout is replicated across grid columns, so only one result
    /// per distinct row-range is used.
    pub fn assemble_eigenvectors(results: &[ChaseResult<T>]) -> Matrix<T> {
        assert!(!results.is_empty());
        let n = results[0].n;
        let nev = results[0].eigenvalues.len();
        let mut full = Matrix::zeros(n, nev);
        let mut covered = vec![false; n];
        for r in results {
            if r.rows.is_empty() || covered[r.rows.first()] {
                continue;
            }
            for (li, g) in r.rows.iter().enumerate() {
                for j in 0..nev {
                    full[(g, j)] = r.eigenvectors_local[(li, j)];
                }
                covered[g] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "row sets did not cover 0..N");
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_linalg::C64;

    fn dummy(rows: std::ops::Range<usize>, n: usize) -> ChaseResult<C64> {
        let block = Matrix::from_fn(rows.len(), 2, |i, j| {
            C64::from_f64((rows.start + i) as f64 * 10.0 + j as f64)
        });
        ChaseResult {
            eigenvalues: vec![1.0, 2.0],
            residuals: vec![0.0, 0.0],
            eigenvectors_local: block,
            rows: rows.into(),
            n,
            iterations: 1,
            matvecs: 0,
            lowprec_matvecs: 0,
            converged: true,
            stats: vec![],
            norm_h: 1.0,
            bounds: SpectralBounds {
                mu_1: 0.0,
                mu_ne: 0.0,
                b_sup: 1.0,
            },
            warm_started: false,
            recovery: RecoveryLog::default(),
            plan: None,
        }
    }

    #[test]
    fn assemble_covers_and_dedups() {
        // Grid 2x2: two distinct row ranges, each appearing twice.
        let results = vec![
            dummy(0..3, 5),
            dummy(0..3, 5),
            dummy(3..5, 5),
            dummy(3..5, 5),
        ];
        let full = ChaseResult::assemble_eigenvectors(&results);
        assert_eq!(full.rows(), 5);
        assert_eq!(full[(4, 1)], C64::from_f64(41.0));
        assert_eq!(full[(0, 0)], C64::from_f64(0.0));
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn assemble_detects_gaps() {
        let results = vec![dummy(0..3, 5)];
        ChaseResult::assemble_eigenvectors(&results);
    }
}
