//! Solver output and per-iteration statistics.

use crate::qr::QrVariant;
use chase_comm::IndexSet;
use chase_linalg::{Matrix, Scalar};

/// Diagnostics for one outer ChASE iteration — the raw material for Fig. 1
/// (condition numbers), Table 2 (MatVecs/iterations) and the convergence
/// narrative of Section 4.
#[derive(Debug, Clone)]
pub struct IterStats {
    /// 1-based outer iteration index.
    pub iter: usize,
    /// Algorithm 5 estimate of `kappa_2` of the filtered block.
    pub est_cond: f64,
    /// Exact `kappa_2` (one-sided Jacobi), when tracking is enabled.
    pub true_cond: Option<f64>,
    /// QR implementation the switchboard chose.
    pub qr_variant: QrVariant,
    /// MatVec column-applications spent in this iteration's filter.
    pub matvecs: u64,
    /// Columns newly locked this iteration.
    pub new_locked: usize,
    /// Total locked after this iteration.
    pub locked: usize,
    /// Extremes of the active residuals after this iteration.
    pub min_res: f64,
    pub max_res: f64,
    /// Largest Chebyshev degree used this iteration.
    pub max_degree: usize,
}

/// Final solver output (per rank: eigenvector rows are this rank's C-layout
/// block; eigenvalues and scalars are identical on every rank).
#[derive(Debug, Clone)]
pub struct ChaseResult<T: Scalar> {
    /// The `nev` lowest eigenvalues, ascending.
    pub eigenvalues: Vec<T::Real>,
    /// Residual norms of the returned pairs.
    pub residuals: Vec<T::Real>,
    /// Local rows of the eigenvector block (`n_r x nev`).
    pub eigenvectors_local: Matrix<T>,
    /// Global row indices of the local block.
    pub rows: IndexSet,
    /// Global problem size.
    pub n: usize,
    /// Outer iterations executed.
    pub iterations: usize,
    /// Total filter MatVecs (the paper's "MatVecs" column).
    pub matvecs: u64,
    /// Whether all `nev` pairs converged within `max_iter`.
    pub converged: bool,
    /// Per-iteration diagnostics.
    pub stats: Vec<IterStats>,
    /// Spectral-norm scale used for the convergence test.
    pub norm_h: f64,
}

impl<T: Scalar> ChaseResult<T> {
    /// Assemble full eigenvectors from the per-rank results of an SPMD run.
    ///
    /// The C-layout is replicated across grid columns, so only one result
    /// per distinct row-range is used.
    pub fn assemble_eigenvectors(results: &[ChaseResult<T>]) -> Matrix<T> {
        assert!(!results.is_empty());
        let n = results[0].n;
        let nev = results[0].eigenvalues.len();
        let mut full = Matrix::zeros(n, nev);
        let mut covered = vec![false; n];
        for r in results {
            if r.rows.is_empty() || covered[r.rows.first()] {
                continue;
            }
            for (li, g) in r.rows.iter().enumerate() {
                for j in 0..nev {
                    full[(g, j)] = r.eigenvectors_local[(li, j)];
                }
                covered[g] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "row sets did not cover 0..N");
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_linalg::C64;

    fn dummy(rows: std::ops::Range<usize>, n: usize) -> ChaseResult<C64> {
        let block = Matrix::from_fn(rows.len(), 2, |i, j| {
            C64::from_f64((rows.start + i) as f64 * 10.0 + j as f64)
        });
        ChaseResult {
            eigenvalues: vec![1.0, 2.0],
            residuals: vec![0.0, 0.0],
            eigenvectors_local: block,
            rows: rows.into(),
            n,
            iterations: 1,
            matvecs: 0,
            converged: true,
            stats: vec![],
            norm_h: 1.0,
        }
    }

    #[test]
    fn assemble_covers_and_dedups() {
        // Grid 2x2: two distinct row ranges, each appearing twice.
        let results = vec![
            dummy(0..3, 5),
            dummy(0..3, 5),
            dummy(3..5, 5),
            dummy(3..5, 5),
        ];
        let full = ChaseResult::assemble_eigenvectors(&results);
        assert_eq!(full.rows(), 5);
        assert_eq!(full[(4, 1)], C64::from_f64(41.0));
        assert_eq!(full[(0, 0)], C64::from_f64(0.0));
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn assemble_detects_gaps() {
        let results = vec![dummy(0..3, 5)];
        ChaseResult::assemble_eigenvectors(&results);
    }
}
