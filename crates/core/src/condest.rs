//! Condition-number estimation of the filtered vectors (Algorithm 5).
//!
//! The Chebyshev filter amplifies the eigencomponent at `lambda` by roughly
//! `|rho(t)|^deg`, where `t = (lambda - c)/e` maps the damped interval to
//! `[-1, 1]` and `rho(t) = t ± sqrt(t^2 - 1)` is the Joukowski growth factor
//! (`|rho| = 1` inside the interval, `> 1` outside). Comparing the most
//! amplified retained component against the least amplified active one gives
//! a cost-free upper bound on `kappa_2` of the filtered block, which drives
//! the QR switchboard (Algorithm 4).

/// Joukowski growth factor `max |t ± sqrt(t^2 - 1)|` (>= 1 for all real t).
pub fn growth_factor(t: f64) -> f64 {
    let d = t * t - 1.0;
    if d <= 0.0 {
        // Inside [-1, 1]: |t ± i sqrt(1 - t^2)| = 1 — no amplification.
        1.0
    } else {
        let s = d.sqrt();
        (t - s).abs().max((t + s).abs())
    }
}

/// Algorithm 5: estimate `kappa_2` of the filtered block.
///
/// * `ritzv` — current Ritz values (ascending within the active part),
///   length `ne`; `ritzv[0]` approximates the most-amplified eigenvalue.
/// * `c`, `e` — center and half-width of the damped interval.
/// * `degs` — per-column Chebyshev degrees, length `ne` (sorted ascending in
///   the active part, mirroring the solver's column order).
/// * `locked` — number of converged, deflated columns.
pub fn cond_est(ritzv: &[f64], c: f64, e: f64, degs: &[usize], locked: usize) -> f64 {
    assert_eq!(ritzv.len(), degs.len());
    assert!(
        locked < degs.len(),
        "cond_est needs at least one active column"
    );
    assert!(e > 0.0, "empty filter interval");
    let t_prime = (ritzv[0] - c) / e;
    let t = (ritzv[locked] - c) / e;
    let rho = growth_factor(t);
    let rho_prime = growth_factor(t_prime);
    let d = degs[locked] as f64;
    let d_max = degs[locked..].iter().copied().max().unwrap() as f64;
    // cond = |rho|^d * |rho'|^(d_M - d), computed in log space to survive
    // rho^36 for deep spectra without overflow.
    let log_cond = d * rho.ln() + (d_max - d) * rho_prime.ln();
    log_cond.exp().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_inside_interval_is_one() {
        for t in [-1.0, -0.5, 0.0, 0.7, 1.0] {
            assert_eq!(growth_factor(t), 1.0);
        }
    }

    #[test]
    fn growth_outside_interval_exceeds_one() {
        assert!(growth_factor(1.5) > 1.0);
        assert!(growth_factor(-2.0) > 1.0);
        // symmetric in t
        assert!((growth_factor(-2.0) - growth_factor(2.0)).abs() < 1e-15);
        // monotone in |t|
        assert!(growth_factor(3.0) > growth_factor(2.0));
    }

    #[test]
    fn growth_matches_closed_form() {
        // rho(2) = 2 + sqrt(3)
        assert!((growth_factor(2.0) - (2.0 + 3.0f64.sqrt())).abs() < 1e-14);
    }

    #[test]
    fn cond_est_uniform_degrees() {
        // All columns at the same Ritz value and degree: cond = rho^d.
        let ritzv = vec![-3.0; 4];
        let degs = vec![20usize; 4];
        // c = 0, e = 1 -> t = -3, rho = 3 + sqrt(8)
        let rho = 3.0 + 8.0f64.sqrt();
        let got = cond_est(&ritzv, 0.0, 1.0, &degs, 0);
        assert!((got.ln() - 20.0 * rho.ln()).abs() < 1e-9);
    }

    #[test]
    fn cond_est_mixed_degrees_uses_max() {
        // First active column has small degree; another has larger.
        let ritzv = vec![-4.0, -3.0, -2.0];
        let degs = vec![10usize, 10, 20];
        let got = cond_est(&ritzv, 0.0, 1.0, &degs, 0);
        let rho = growth_factor(-4.0); // rho' (most amplified)
        let rho_act = growth_factor(-4.0); // t uses ritzv[locked] = ritzv[0] here
        let expect = 10.0 * rho_act.ln() + 10.0 * rho.ln();
        assert!((got.ln() - expect).abs() < 1e-9);
    }

    #[test]
    fn cond_est_respects_locked_offset() {
        let ritzv = vec![-5.0, -4.0, -1.5, -1.2];
        let degs = vec![0usize, 0, 8, 8];
        // With 2 locked, t comes from ritzv[2] = -1.5.
        let got = cond_est(&ritzv, 0.0, 1.0, &degs, 2);
        let expect = 8.0 * growth_factor(-1.5).ln();
        assert!((got.ln() - expect).abs() < 1e-9);
    }

    #[test]
    fn cond_est_no_overflow_at_max_degree() {
        let ritzv = vec![-1e3, -1.0];
        let degs = vec![36usize, 36];
        let got = cond_est(&ritzv, 0.0, 1.0, &degs, 0);
        assert!(got.is_finite() || got == f64::INFINITY);
        assert!(
            got > 1e30,
            "deep eigenvalue at degree 36 must blow up the bound"
        );
    }

    #[test]
    fn cond_est_at_least_one() {
        // Active Ritz value inside the damped interval -> no growth -> 1.
        let got = cond_est(&[0.0, 0.5], 0.0, 1.0, &[4, 4], 0);
        assert_eq!(got, 1.0);
    }
}
