//! The distributed Hermitian matrix-multiply (Section 2.2's "customized MPI
//! scheme") that underlies the Filter, Rayleigh–Ritz and Residual stages.
//!
//! Because `H` is Hermitian, `H X` for a C-layout block can be computed as
//! `H^H X` using each rank's *stored* block transposed — the result lands in
//! B-layout after a column-communicator allreduce, and the reverse direction
//! (`H B`, row-communicator allreduce) returns to C-layout. No vector block
//! is ever re-distributed.

use crate::layout::DistHerm;
use chase_comm::{CommError, Communicator, RankCtx, Reduce};
use chase_device::{DevAllreduce, Device};
use chase_linalg::matrix::ColsMut;
use chase_linalg::{Matrix, Op, Scalar};
use std::ops::Range;

/// `B[:, range] = alpha * H^H * C[:, range] + beta * B[:, range]`
/// (C-layout in, B-layout out; allreduce over the column communicator).
///
/// The `beta` term is applied on exactly one rank of the reducing
/// communicator so the allreduce adds it once — this is how the three-term
/// Chebyshev recurrence reuses the destination buffer as `X_{i-2}` storage.
#[allow(clippy::too_many_arguments)]
pub fn hemm_c_to_b<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &DistHerm<T>,
    c_buf: &Matrix<T>,
    b_buf: &mut Matrix<T>,
    col0: usize,
    ncols: usize,
    alpha: T,
    beta: T,
) {
    debug_assert_eq!(c_buf.rows(), h.n_r());
    debug_assert_eq!(b_buf.rows(), h.n_c());
    let on_root = ctx.col_comm.rank() == 0;
    let eff_beta = if on_root { beta } else { T::zero() };
    dev.gemm(
        Op::ConjTrans,
        Op::None,
        alpha,
        h.local.as_ref(),
        c_buf.cols_ref(col0..col0 + ncols),
        eff_beta,
        b_buf.cols_mut(col0..col0 + ncols),
    );
    let mut view = b_buf.cols_mut(col0..col0 + ncols);
    dev.allreduce_sum(&ctx.col_comm, view.as_mut_slice());
}

/// `C[:, range] = alpha * H * B[:, range] + beta * C[:, range]`
/// (B-layout in, C-layout out; allreduce over the row communicator).
#[allow(clippy::too_many_arguments)]
pub fn hemm_b_to_c<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &DistHerm<T>,
    b_buf: &Matrix<T>,
    c_buf: &mut Matrix<T>,
    col0: usize,
    ncols: usize,
    alpha: T,
    beta: T,
) {
    debug_assert_eq!(c_buf.rows(), h.n_r());
    debug_assert_eq!(b_buf.rows(), h.n_c());
    let on_root = ctx.row_comm.rank() == 0;
    let eff_beta = if on_root { beta } else { T::zero() };
    dev.gemm(
        Op::None,
        Op::None,
        alpha,
        h.local.as_ref(),
        b_buf.cols_ref(col0..col0 + ncols),
        eff_beta,
        c_buf.cols_mut(col0..col0 + ncols),
    );
    let mut view = c_buf.cols_mut(col0..col0 + ncols);
    dev.allreduce_sum(&ctx.row_comm, view.as_mut_slice());
}

/// Panel-chunked double-buffered HEMM core: split the column range into
/// `panel`-wide panels; while panel `k`'s allreduce is in flight, panel
/// `k+1`'s GEMM runs. The whole pipelined step executes inside one ledger
/// overlap window so the overlap-aware perfmodel prices it at
/// `max(compute, comm)`.
///
/// Bitwise identical to the flat path: the tiled GEMM's per-element
/// accumulation order is independent of column panelling, and the
/// nonblocking allreduce folds contributions in the same member order as
/// the blocking one.
///
/// Returns `Err` if an in-flight allreduce never completes (a peer's post
/// was dropped): the overlap window is closed and the timeout propagates so
/// the solver can abort with a typed error instead of wedging.
#[allow(clippy::too_many_arguments)]
fn hemm_pipelined<T: Scalar + Reduce>(
    dev: &Device<'_>,
    comm: &Communicator,
    opa: Op,
    h_local: &Matrix<T>,
    src: &Matrix<T>,
    dst: &mut Matrix<T>,
    col0: usize,
    ncols: usize,
    alpha: T,
    beta: T,
    panel: usize,
) -> Result<(), CommError> {
    let on_root = comm.rank() == 0;
    let eff_beta = if on_root { beta } else { T::zero() };
    let panel = panel.max(1);
    let out_rows = dst.rows();
    // Resolve op(H_local) once: a per-panel transpose pack would cost
    // O(n_r * n_c) per panel and erase the pipeline's win on the odd
    // (ConjTrans) steps.
    let h_packed = chase_linalg::prepack_a(opa, h_local.as_ref());
    dev.begin_overlap();
    let mut pending: Option<(DevAllreduce<'_, '_, T>, Range<usize>)> = None;
    let mut j0 = col0;
    while j0 < col0 + ncols {
        let w = panel.min(col0 + ncols - j0);
        let range = j0..j0 + w;
        // Zero-copy posting: the GEMM writes its panel straight into a
        // pooled staging buffer, which then *moves* into the collective.
        // Only the beta-carrying root rank must preload the destination
        // panel (the GEMM reads `C` when beta != 0); everyone else posts
        // without ever touching `dst` on the way out.
        let mut stage = dev.nb_staging::<T>(comm, out_rows * w);
        if eff_beta != T::zero() {
            stage
                .as_mut_slice()
                .copy_from_slice(dst.cols_ref(range.clone()).as_slice());
        }
        dev.gemm_prepacked(
            &h_packed,
            Op::None,
            alpha,
            src.cols_ref(range.clone()),
            eff_beta,
            ColsMut::new(stage.as_mut_slice(), out_rows, w),
        );
        if let Some((req, done)) = pending.take() {
            let mut view = dst.cols_mut(done);
            if let Err(e) = req.wait(view.as_mut_slice()) {
                dev.end_overlap();
                return Err(e);
            }
        }
        pending = Some((dev.iallreduce_sum_staged(comm, stage), range));
        j0 += w;
    }
    if let Some((req, done)) = pending.take() {
        let mut view = dst.cols_mut(done);
        if let Err(e) = req.wait(view.as_mut_slice()) {
            dev.end_overlap();
            return Err(e);
        }
    }
    dev.end_overlap();
    Ok(())
}

/// Pipelined variant of [`hemm_c_to_b`]: `panel = None` asks the topology
/// tuner for the width; `Some(w)` pins it.
#[allow(clippy::too_many_arguments)]
pub fn hemm_c_to_b_pipelined<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &DistHerm<T>,
    c_buf: &Matrix<T>,
    b_buf: &mut Matrix<T>,
    col0: usize,
    ncols: usize,
    alpha: T,
    beta: T,
    panel: Option<usize>,
) -> Result<(), CommError> {
    debug_assert_eq!(c_buf.rows(), h.n_r());
    debug_assert_eq!(b_buf.rows(), h.n_c());
    let panel = panel
        .unwrap_or_else(|| dev.overlap_panel_cols::<T>(&ctx.col_comm, ncols, h.n_c(), h.n_r()));
    hemm_pipelined(
        dev,
        &ctx.col_comm,
        Op::ConjTrans,
        &h.local,
        c_buf,
        b_buf,
        col0,
        ncols,
        alpha,
        beta,
        panel,
    )
}

/// Pipelined variant of [`hemm_b_to_c`]: `panel = None` asks the topology
/// tuner for the width; `Some(w)` pins it.
#[allow(clippy::too_many_arguments)]
pub fn hemm_b_to_c_pipelined<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &DistHerm<T>,
    b_buf: &Matrix<T>,
    c_buf: &mut Matrix<T>,
    col0: usize,
    ncols: usize,
    alpha: T,
    beta: T,
    panel: Option<usize>,
) -> Result<(), CommError> {
    debug_assert_eq!(c_buf.rows(), h.n_r());
    debug_assert_eq!(b_buf.rows(), h.n_c());
    let panel = panel
        .unwrap_or_else(|| dev.overlap_panel_cols::<T>(&ctx.row_comm, ncols, h.n_r(), h.n_c()));
    hemm_pipelined(
        dev,
        &ctx.row_comm,
        Op::None,
        &h.local,
        b_buf,
        c_buf,
        col0,
        ncols,
        alpha,
        beta,
        panel,
    )
}

/// Distributed matvec on a *replicated* global vector: `y = H x`.
///
/// Used by the Lanczos estimator, where vectors are cheap (`O(N)`) and
/// keeping them replicated avoids a second layout. The result is identical
/// (bitwise) on every rank.
pub fn matvec_replicated<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &DistHerm<T>,
    x: &[T],
    y: &mut [T],
) {
    debug_assert_eq!(x.len(), h.n);
    debug_assert_eq!(y.len(), h.n);
    // Local contribution to rows J_j: H[I_i, J_j]^H x[I_i].
    let mut part = vec![T::zero(); h.n_c()];
    let x_rows: Vec<T> = h.row_set.iter().map(|g| x[g]).collect();
    {
        let xv = chase_linalg::matrix::ColsRef::new(&x_rows, h.n_r(), 1);
        let pv = ColsMut::new(&mut part, h.n_c(), 1);
        dev.gemm(
            Op::ConjTrans,
            Op::None,
            T::one(),
            h.local.as_ref(),
            xv,
            T::zero(),
            pv,
        );
    }
    dev.allreduce_sum(&ctx.col_comm, &mut part);
    // Ranks of a row communicator hold disjoint J_j sets covering 0..N;
    // scatter the gathered pieces by their global indices.
    let gathered = dev.allgather(&ctx.row_comm, &part);
    debug_assert_eq!(gathered.len(), h.n);
    let b_dist = crate::layout::RowDist::b_layout(h.n, ctx.shape, h.dist);
    let full = b_dist.assemble(&gathered, 1);
    y.copy_from_slice(full.col(0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_comm::{block_range, run_grid, GridShape};
    use chase_device::Backend;
    use chase_linalg::{gemm_new, C64};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_hermitian(n: usize, seed: u64) -> Matrix<C64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x = Matrix::<C64>::random(n, n, &mut rng);
        let xh = x.adjoint();
        Matrix::from_fn(n, n, |i, j| (x[(i, j)] + xh[(i, j)]).scale(0.5))
    }

    #[test]
    fn c_to_b_matches_global_product() {
        let n = 12;
        let ne = 5;
        let h = random_hermitian(n, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cg = Matrix::<C64>::random(n, ne, &mut rng);
        let expect = gemm_new(Op::None, Op::None, &h, &cg);
        for shape in [
            GridShape::new(1, 1),
            GridShape::new(2, 2),
            GridShape::new(2, 3),
        ] {
            let (h, cg, expect) = (&h, &cg, &expect);
            let out = run_grid(shape, move |ctx| {
                let dev = Device::new(ctx, Backend::Nccl);
                let dh = DistHerm::from_global(h, ctx);
                let c_loc = cg.select_rows(dh.row_set.iter());
                let mut b_loc = Matrix::<C64>::zeros(dh.n_c(), ne);
                hemm_c_to_b(
                    &dev,
                    ctx,
                    &dh,
                    &c_loc,
                    &mut b_loc,
                    0,
                    ne,
                    C64::one(),
                    C64::zero(),
                );
                let want = expect.select_rows(dh.col_set.iter());
                b_loc.max_abs_diff(&want)
            });
            for d in out.results {
                assert!(d < 1e-12, "shape {shape:?}: diff {d}");
            }
        }
    }

    #[test]
    fn b_to_c_matches_global_product() {
        let n = 10;
        let ne = 4;
        let h = random_hermitian(n, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let bg = Matrix::<C64>::random(n, ne, &mut rng);
        let expect = gemm_new(Op::None, Op::None, &h, &bg);
        let (h, bg, expect) = (&h, &bg, &expect);
        let out = run_grid(GridShape::new(2, 2), move |ctx| {
            let dev = Device::new(ctx, Backend::Std);
            let dh = DistHerm::from_global(h, ctx);
            let b_loc = bg.select_rows(dh.col_set.iter());
            let mut c_loc = Matrix::<C64>::zeros(dh.n_r(), ne);
            hemm_b_to_c(
                &dev,
                ctx,
                &dh,
                &b_loc,
                &mut c_loc,
                0,
                ne,
                C64::one(),
                C64::zero(),
            );
            let want = expect.select_rows(dh.row_set.iter());
            c_loc.max_abs_diff(&want)
        });
        for d in out.results {
            assert!(d < 1e-12);
        }
    }

    #[test]
    fn beta_term_added_exactly_once() {
        // y = H x + beta * y0 must not multiply beta by the communicator size.
        let n = 8;
        let h = random_hermitian(n, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cg = Matrix::<C64>::random(n, 2, &mut rng);
        let bg0 = Matrix::<C64>::random(n, 2, &mut rng);
        let mut expect = gemm_new(Op::None, Op::None, &h, &cg);
        for j in 0..2 {
            for i in 0..n {
                expect[(i, j)] += bg0[(i, j)].scale(3.0);
            }
        }
        let (h, cg, bg0, expect) = (&h, &cg, &bg0, &expect);
        let out = run_grid(GridShape::new(2, 2), move |ctx| {
            let dev = Device::new(ctx, Backend::Nccl);
            let dh = DistHerm::from_global(h, ctx);
            let c_loc = cg.select_rows(dh.row_set.iter());
            let mut b_loc = bg0.select_rows(dh.col_set.iter());
            hemm_c_to_b(
                &dev,
                ctx,
                &dh,
                &c_loc,
                &mut b_loc,
                0,
                2,
                C64::one(),
                C64::from_f64(3.0),
            );
            b_loc.max_abs_diff(&expect.select_rows(dh.col_set.iter()))
        });
        for d in out.results {
            assert!(d < 1e-12, "beta duplicated: diff {d}");
        }
    }

    #[test]
    fn pipelined_hemm_is_bitwise_identical_to_flat() {
        let n = 14;
        let ne = 6;
        let h = random_hermitian(n, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let cg = Matrix::<C64>::random(n, ne, &mut rng);
        let bg0 = Matrix::<C64>::random(n, ne, &mut rng);
        for panel in [Some(1), Some(2), Some(5), Some(ne), None] {
            let (h, cg, bg0) = (&h, &cg, &bg0);
            let out = run_grid(GridShape::new(2, 2), move |ctx| {
                let dev = Device::new(ctx, Backend::Nccl);
                let dh = DistHerm::from_global(h, ctx);
                let c_loc = cg.select_rows(dh.row_set.iter());
                let alpha = C64::from_f64(1.25);
                let beta = C64::from_f64(-0.5);
                let mut flat = bg0.select_rows(dh.col_set.iter());
                hemm_c_to_b(&dev, ctx, &dh, &c_loc, &mut flat, 0, ne, alpha, beta);
                let mut piped = bg0.select_rows(dh.col_set.iter());
                hemm_c_to_b_pipelined(
                    &dev, ctx, &dh, &c_loc, &mut piped, 0, ne, alpha, beta, panel,
                )
                .unwrap();
                assert_eq!(
                    flat.as_ref().as_slice(),
                    piped.as_ref().as_slice(),
                    "panel {panel:?} changed bits"
                );
                // And the reverse direction over the row communicator.
                let b_loc = cg.select_rows(dh.col_set.iter());
                let mut flat_c = bg0.select_rows(dh.row_set.iter());
                hemm_b_to_c(&dev, ctx, &dh, &b_loc, &mut flat_c, 0, ne, alpha, beta);
                let mut piped_c = bg0.select_rows(dh.row_set.iter());
                hemm_b_to_c_pipelined(
                    &dev,
                    ctx,
                    &dh,
                    &b_loc,
                    &mut piped_c,
                    0,
                    ne,
                    alpha,
                    beta,
                    panel,
                )
                .unwrap();
                assert_eq!(flat_c.as_ref().as_slice(), piped_c.as_ref().as_slice());
                0u8
            });
            drop(out);
        }
    }

    #[test]
    fn matvec_replicated_consistent() {
        let n = 11;
        let h = random_hermitian(n, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let x: Vec<C64> = (0..n).map(|_| C64::sample_standard(&mut rng)).collect();
        let xm = Matrix::from_vec(n, 1, x.clone());
        let expect = gemm_new(Op::None, Op::None, &h, &xm);
        let (h, x, expect) = (&h, &x, &expect);
        let out = run_grid(GridShape::new(2, 3), move |ctx| {
            let dev = Device::new(ctx, Backend::Nccl);
            let dh = DistHerm::from_global(h, ctx);
            let mut y = vec![C64::zero(); n];
            matvec_replicated(&dev, ctx, &dh, x, &mut y);
            y
        });
        for y in &out.results {
            for i in 0..n {
                assert!((y[i] - expect[(i, 0)]).abs() < 1e-12);
            }
        }
        // bitwise identical across ranks (deterministic reduce order)
        for y in &out.results[1..] {
            assert_eq!(y, &out.results[0]);
        }
    }

    #[test]
    fn block_ranges_consistent_with_layout() {
        // Guard: the J_j pieces gathered by matvec_replicated must cover 0..N
        // in order.
        let shape = GridShape::new(3, 4);
        let mut covered = 0;
        for j in 0..shape.q {
            let r = block_range(23, shape.q, j);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, 23);
    }
}
