//! The distributed Hermitian matrix-multiply (Section 2.2's "customized MPI
//! scheme") that underlies the Filter, Rayleigh–Ritz and Residual stages.
//!
//! Because `H` is Hermitian, `H X` for a C-layout block can be computed as
//! `H^H X` using each rank's *stored* block transposed — the result lands in
//! B-layout after a column-communicator allreduce, and the reverse direction
//! (`H B`, row-communicator allreduce) returns to C-layout. No vector block
//! is ever re-distributed.

use crate::layout::DistHerm;
use chase_comm::{RankCtx, Reduce};
use chase_device::Device;
use chase_linalg::matrix::ColsMut;
use chase_linalg::{Matrix, Op, Scalar};

/// `B[:, range] = alpha * H^H * C[:, range] + beta * B[:, range]`
/// (C-layout in, B-layout out; allreduce over the column communicator).
///
/// The `beta` term is applied on exactly one rank of the reducing
/// communicator so the allreduce adds it once — this is how the three-term
/// Chebyshev recurrence reuses the destination buffer as `X_{i-2}` storage.
#[allow(clippy::too_many_arguments)]
pub fn hemm_c_to_b<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &DistHerm<T>,
    c_buf: &Matrix<T>,
    b_buf: &mut Matrix<T>,
    col0: usize,
    ncols: usize,
    alpha: T,
    beta: T,
) {
    debug_assert_eq!(c_buf.rows(), h.n_r());
    debug_assert_eq!(b_buf.rows(), h.n_c());
    let on_root = ctx.col_comm.rank() == 0;
    let eff_beta = if on_root { beta } else { T::zero() };
    dev.gemm(
        Op::ConjTrans,
        Op::None,
        alpha,
        h.local.as_ref(),
        c_buf.cols_ref(col0..col0 + ncols),
        eff_beta,
        b_buf.cols_mut(col0..col0 + ncols),
    );
    let mut view = b_buf.cols_mut(col0..col0 + ncols);
    dev.allreduce_sum(&ctx.col_comm, view.as_mut_slice());
}

/// `C[:, range] = alpha * H * B[:, range] + beta * C[:, range]`
/// (B-layout in, C-layout out; allreduce over the row communicator).
#[allow(clippy::too_many_arguments)]
pub fn hemm_b_to_c<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &DistHerm<T>,
    b_buf: &Matrix<T>,
    c_buf: &mut Matrix<T>,
    col0: usize,
    ncols: usize,
    alpha: T,
    beta: T,
) {
    debug_assert_eq!(c_buf.rows(), h.n_r());
    debug_assert_eq!(b_buf.rows(), h.n_c());
    let on_root = ctx.row_comm.rank() == 0;
    let eff_beta = if on_root { beta } else { T::zero() };
    dev.gemm(
        Op::None,
        Op::None,
        alpha,
        h.local.as_ref(),
        b_buf.cols_ref(col0..col0 + ncols),
        eff_beta,
        c_buf.cols_mut(col0..col0 + ncols),
    );
    let mut view = c_buf.cols_mut(col0..col0 + ncols);
    dev.allreduce_sum(&ctx.row_comm, view.as_mut_slice());
}

/// Distributed matvec on a *replicated* global vector: `y = H x`.
///
/// Used by the Lanczos estimator, where vectors are cheap (`O(N)`) and
/// keeping them replicated avoids a second layout. The result is identical
/// (bitwise) on every rank.
pub fn matvec_replicated<T: Scalar + Reduce>(
    dev: &Device<'_>,
    ctx: &RankCtx,
    h: &DistHerm<T>,
    x: &[T],
    y: &mut [T],
) {
    debug_assert_eq!(x.len(), h.n);
    debug_assert_eq!(y.len(), h.n);
    // Local contribution to rows J_j: H[I_i, J_j]^H x[I_i].
    let mut part = vec![T::zero(); h.n_c()];
    let x_rows: Vec<T> = h.row_set.iter().map(|g| x[g]).collect();
    {
        let xv = chase_linalg::matrix::ColsRef::new(&x_rows, h.n_r(), 1);
        let pv = ColsMut::new(&mut part, h.n_c(), 1);
        dev.gemm(
            Op::ConjTrans,
            Op::None,
            T::one(),
            h.local.as_ref(),
            xv,
            T::zero(),
            pv,
        );
    }
    dev.allreduce_sum(&ctx.col_comm, &mut part);
    // Ranks of a row communicator hold disjoint J_j sets covering 0..N;
    // scatter the gathered pieces by their global indices.
    let gathered = dev.allgather(&ctx.row_comm, &part);
    debug_assert_eq!(gathered.len(), h.n);
    let b_dist = crate::layout::RowDist::b_layout(h.n, ctx.shape, h.dist);
    let full = b_dist.assemble(&gathered, 1);
    y.copy_from_slice(full.col(0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_comm::{block_range, run_grid, GridShape};
    use chase_device::Backend;
    use chase_linalg::{gemm_new, C64};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_hermitian(n: usize, seed: u64) -> Matrix<C64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x = Matrix::<C64>::random(n, n, &mut rng);
        let xh = x.adjoint();
        Matrix::from_fn(n, n, |i, j| (x[(i, j)] + xh[(i, j)]).scale(0.5))
    }

    #[test]
    fn c_to_b_matches_global_product() {
        let n = 12;
        let ne = 5;
        let h = random_hermitian(n, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cg = Matrix::<C64>::random(n, ne, &mut rng);
        let expect = gemm_new(Op::None, Op::None, &h, &cg);
        for shape in [
            GridShape::new(1, 1),
            GridShape::new(2, 2),
            GridShape::new(2, 3),
        ] {
            let (h, cg, expect) = (&h, &cg, &expect);
            let out = run_grid(shape, move |ctx| {
                let dev = Device::new(ctx, Backend::Nccl);
                let dh = DistHerm::from_global(h, ctx);
                let c_loc = cg.select_rows(dh.row_set.iter());
                let mut b_loc = Matrix::<C64>::zeros(dh.n_c(), ne);
                hemm_c_to_b(
                    &dev,
                    ctx,
                    &dh,
                    &c_loc,
                    &mut b_loc,
                    0,
                    ne,
                    C64::one(),
                    C64::zero(),
                );
                let want = expect.select_rows(dh.col_set.iter());
                b_loc.max_abs_diff(&want)
            });
            for d in out.results {
                assert!(d < 1e-12, "shape {shape:?}: diff {d}");
            }
        }
    }

    #[test]
    fn b_to_c_matches_global_product() {
        let n = 10;
        let ne = 4;
        let h = random_hermitian(n, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let bg = Matrix::<C64>::random(n, ne, &mut rng);
        let expect = gemm_new(Op::None, Op::None, &h, &bg);
        let (h, bg, expect) = (&h, &bg, &expect);
        let out = run_grid(GridShape::new(2, 2), move |ctx| {
            let dev = Device::new(ctx, Backend::Std);
            let dh = DistHerm::from_global(h, ctx);
            let b_loc = bg.select_rows(dh.col_set.iter());
            let mut c_loc = Matrix::<C64>::zeros(dh.n_r(), ne);
            hemm_b_to_c(
                &dev,
                ctx,
                &dh,
                &b_loc,
                &mut c_loc,
                0,
                ne,
                C64::one(),
                C64::zero(),
            );
            let want = expect.select_rows(dh.row_set.iter());
            c_loc.max_abs_diff(&want)
        });
        for d in out.results {
            assert!(d < 1e-12);
        }
    }

    #[test]
    fn beta_term_added_exactly_once() {
        // y = H x + beta * y0 must not multiply beta by the communicator size.
        let n = 8;
        let h = random_hermitian(n, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cg = Matrix::<C64>::random(n, 2, &mut rng);
        let bg0 = Matrix::<C64>::random(n, 2, &mut rng);
        let mut expect = gemm_new(Op::None, Op::None, &h, &cg);
        for j in 0..2 {
            for i in 0..n {
                expect[(i, j)] += bg0[(i, j)].scale(3.0);
            }
        }
        let (h, cg, bg0, expect) = (&h, &cg, &bg0, &expect);
        let out = run_grid(GridShape::new(2, 2), move |ctx| {
            let dev = Device::new(ctx, Backend::Nccl);
            let dh = DistHerm::from_global(h, ctx);
            let c_loc = cg.select_rows(dh.row_set.iter());
            let mut b_loc = bg0.select_rows(dh.col_set.iter());
            hemm_c_to_b(
                &dev,
                ctx,
                &dh,
                &c_loc,
                &mut b_loc,
                0,
                2,
                C64::one(),
                C64::from_f64(3.0),
            );
            b_loc.max_abs_diff(&expect.select_rows(dh.col_set.iter()))
        });
        for d in out.results {
            assert!(d < 1e-12, "beta duplicated: diff {d}");
        }
    }

    #[test]
    fn matvec_replicated_consistent() {
        let n = 11;
        let h = random_hermitian(n, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let x: Vec<C64> = (0..n).map(|_| C64::sample_standard(&mut rng)).collect();
        let xm = Matrix::from_vec(n, 1, x.clone());
        let expect = gemm_new(Op::None, Op::None, &h, &xm);
        let (h, x, expect) = (&h, &x, &expect);
        let out = run_grid(GridShape::new(2, 3), move |ctx| {
            let dev = Device::new(ctx, Backend::Nccl);
            let dh = DistHerm::from_global(h, ctx);
            let mut y = vec![C64::zero(); n];
            matvec_replicated(&dev, ctx, &dh, x, &mut y);
            y
        });
        for y in &out.results {
            for i in 0..n {
                assert!((y[i] - expect[(i, 0)]).abs() < 1e-12);
            }
        }
        // bitwise identical across ranks (deterministic reduce order)
        for y in &out.results[1..] {
            assert_eq!(y, &out.results[0]);
        }
    }

    #[test]
    fn block_ranges_consistent_with_layout() {
        // Guard: the J_j pieces gathered by matvec_replicated must cover 0..N
        // in order.
        let shape = GridShape::new(3, 4);
        let mut covered = 0;
        for j in 0..shape.q {
            let r = block_range(23, shape.q, j);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, 23);
    }
}
