//! Resolved solve plans (the output vocabulary of `chase-tune`).
//!
//! A [`SolvePlan`] pins every performance knob a solve needs — collective
//! schedule, overlap panel width, filter precision — together with its
//! provenance: where the decisions came from and what the model says they
//! cost relative to the `Flat` defaults. `chase-tune` produces plans from
//! measured micro-benchmark trials; [`crate::Params::apply_plan`] merges one
//! into a parameter set, touching only the knobs the caller left on their
//! `Auto`/default settings; the solver stamps the applied plan onto
//! [`crate::ChaseResult`] so every result records how it was scheduled.

use crate::params::{Params, PrecisionMode};
use chase_device::CollectiveAlgo;

/// Where a plan's decisions came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanSource {
    /// Knobs were pinned by hand (CLI flags, workload keys).
    Manual,
    /// The analytic alpha-beta model chose per call site (no DB entry).
    Analytic,
    /// Measured trials, resolved from a plan database entry with this
    /// canonical key.
    Measured { db_key: String },
}

impl PlanSource {
    pub fn name(&self) -> &'static str {
        match self {
            PlanSource::Manual => "manual",
            PlanSource::Analytic => "analytic",
            PlanSource::Measured { .. } => "measured",
        }
    }
}

/// A resolved set of performance decisions for one solve configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvePlan {
    /// Collective execution path. `Auto` here means "per-call choice": the
    /// analytic tuner, or a measured per-size table installed as a
    /// [`chase_comm::CollectiveTuneHook`] on the rank contexts.
    pub collective: CollectiveAlgo,
    /// Run the filter on the overlapped pipeline.
    pub overlap: bool,
    /// Pinned panel width for the pipeline (`None` = per-step tuner choice).
    pub overlap_panel: Option<usize>,
    /// Filter arithmetic precision (always concrete, never `Auto`).
    pub precision: PrecisionMode,
    /// Provenance of the decisions above.
    pub source: PlanSource,
    /// Modeled cost (seconds) of the tuned components of one iteration
    /// under this plan — the quantity the tuner minimized.
    pub tuned_cost: f64,
    /// The same components' modeled cost under the `Flat` defaults
    /// (flat collectives, no overlap, full precision). A measured plan
    /// guarantees `tuned_cost <= flat_cost`: the flat path is always among
    /// the trial candidates.
    pub flat_cost: f64,
}

impl SolvePlan {
    /// The plan matching the historic `Flat` defaults (baseline for
    /// comparisons; applying it is a no-op on default parameters).
    pub fn flat_default() -> Self {
        Self {
            collective: CollectiveAlgo::Flat,
            overlap: false,
            overlap_panel: None,
            precision: PrecisionMode::Full,
            source: PlanSource::Manual,
            tuned_cost: 0.0,
            flat_cost: 0.0,
        }
    }

    /// One-line human summary (CLI, logs).
    pub fn summary(&self) -> String {
        let panel = match (self.overlap, self.overlap_panel) {
            (false, _) => "off".to_string(),
            (true, None) => "auto".to_string(),
            (true, Some(w)) => format!("{w}"),
        };
        format!(
            "collective={} overlap_panel={panel} precision={} source={} modeled {:.3}ms vs flat {:.3}ms",
            self.collective.name(),
            self.precision.name(),
            self.source.name(),
            self.tuned_cost * 1e3,
            self.flat_cost * 1e3,
        )
    }
}

impl Params {
    /// Merge a resolved plan into these parameters, filling only the knobs
    /// still on their `Auto`/default settings:
    ///
    /// * `collective` — replaced when `Flat` (the untouched default) or
    ///   `Auto`; a forced `Ring`/`Tree`/`Doubling` pin is respected.
    /// * `overlap`/`overlap_panel` — adopted unless the caller already
    ///   turned overlap on (an explicit panel pin stays).
    /// * `precision` — replaced only when [`PrecisionMode::Auto`].
    ///
    /// The plan is stamped on `self.plan` either way, so the solver can
    /// attach provenance to the result.
    pub fn apply_plan(&mut self, plan: &SolvePlan) {
        if matches!(self.collective, CollectiveAlgo::Flat | CollectiveAlgo::Auto) {
            self.collective = plan.collective;
        }
        if !self.overlap {
            self.overlap = plan.overlap;
            self.overlap_panel = plan.overlap_panel;
        }
        if self.precision == PrecisionMode::Auto {
            self.precision = plan.precision;
        }
        self.plan = Some(plan.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured() -> SolvePlan {
        SolvePlan {
            collective: CollectiveAlgo::Auto,
            overlap: true,
            overlap_panel: Some(16),
            precision: PrecisionMode::Mixed,
            source: PlanSource::Measured { db_key: "k".into() },
            tuned_cost: 1.0,
            flat_cost: 2.0,
        }
    }

    #[test]
    fn apply_fills_auto_knobs() {
        let mut p = Params::new(6, 4);
        p.precision = PrecisionMode::Auto;
        p.apply_plan(&measured());
        assert_eq!(p.collective, CollectiveAlgo::Auto);
        assert!(p.overlap);
        assert_eq!(p.overlap_panel, Some(16));
        assert_eq!(p.precision, PrecisionMode::Mixed);
        assert!(p.plan.is_some());
    }

    #[test]
    fn apply_respects_manual_pins() {
        let mut p = Params::new(6, 4);
        p.collective = CollectiveAlgo::Ring;
        p.overlap = true;
        p.overlap_panel = Some(4);
        p.precision = PrecisionMode::Full;
        p.apply_plan(&measured());
        assert_eq!(p.collective, CollectiveAlgo::Ring);
        assert_eq!(p.overlap_panel, Some(4));
        assert_eq!(p.precision, PrecisionMode::Full);
    }
}
