//! # chase-core
//!
//! The ChASE eigensolver — Chebyshev Accelerated Subspace iteration for
//! dense Hermitian problems — with the SC'23 paper's novel parallelization
//! scheme, flexible communication-avoiding QR, condition-number-driven QR
//! switching, and backend-dependent (MPI-staged vs NCCL device-direct)
//! collective accounting.
//!
//! Entry points:
//! * [`solve_serial`] — one-rank solve on a replicated matrix.
//! * [`solve_dist`] — SPMD solve inside a [`chase_comm::run_grid`] region.
//! * [`lms::solve_lms`] — the legacy v1.2 layout (redundant QR/RR/residuals),
//!   kept as the ChASE(LMS) baseline of the paper's evaluation.

pub mod ckpt;
pub mod condest;
pub mod elastic;
pub mod degrees;
pub mod filter;
pub mod hemm;
pub mod layout;
pub mod lms;
pub mod params;
pub mod plan;
pub mod qr;
pub mod result;
pub mod solver;
pub mod warm;

pub use ckpt::{load_latest, CkptError, Snapshot, CKPT_FORMAT, CKPT_VERSION};
pub use elastic::{try_solve_elastic, ElasticOutcome};
pub use condest::{cond_est, growth_factor};
pub use degrees::{degree_sort_permutation, optimal_degree, optimize_degrees};
pub use filter::{
    chebyshev_filter, chebyshev_filter_mixed, chebyshev_filter_with, FilterBounds, FilterError,
    FilterExec,
};
pub use hemm::{hemm_b_to_c, hemm_b_to_c_pipelined, hemm_c_to_b, hemm_c_to_b_pipelined};
pub use layout::{DistHerm, MemoryReport, RowDist};
pub use params::{Params, PrecisionMode, QrStrategy};
pub use plan::{PlanSource, SolvePlan};
pub use qr::{
    cholesky_qr, flexible_qr, householder_qr_dist, ladder_start, next_rung, qr_ladder,
    shifted_cholesky_qr2, LadderAttempt, QrError, QrVariant, COND_SHIFTED, COND_SINGLE,
};
pub use result::{
    ChaseError, ChaseErrorKind, ChaseResult, IterStats, RecoveryEvent, RecoveryEventKind,
    RecoveryLog,
};
pub use solver::{
    estimate_bounds_dist, solve_dist, solve_serial, try_solve_dist, try_solve_dist_resumed,
    try_solve_dist_warm, try_solve_serial, try_solve_serial_warm, Chase,
};
pub use warm::WarmStart;
