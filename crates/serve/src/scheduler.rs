//! The multi-tenant solve scheduler: a bounded worker pool over rank-grids,
//! fed from an admission-controlled queue, with a persistent warm-start
//! session cache.
//!
//! Execution model (async-free): `submit` enqueues, `drain` freezes the
//! batch, *plans* it deterministically (canonical order, deadline
//! admission, warm/cold walk — see [`crate::plan`]), then executes the plan
//! on `workers` OS threads. Workers only compute: every scheduler decision
//! is taken at plan time, so eigenpairs, warm-start hit counts and metrics
//! are bitwise independent of submission order and of which worker finishes
//! first. A failed job degrades its own session to a cold (or grandparent)
//! restart and never poisons siblings or the pool.

use crate::cache::SessionCache;
use crate::job::{JobId, JobOutcome, JobReport, JobSpec, SolveOutput, WarmKind};
use crate::metrics::ServeMetrics;
use crate::plan::{build_plan, Plan};
use chase_comm::Reduce;
use chase_core::{
    try_solve_dist_warm, try_solve_elastic, ChaseError, ChaseErrorKind, ChaseResult, DistHerm,
    RecoveryEventKind, RecoveryLog, WarmStart,
};
use chase_device::Backend;
use chase_linalg::{Matrix, Scalar};
use chase_trace::{Trace, TraceRecorder};
use chase_tune::{plan_from_entry, plan_key, tune_entry, MeasuredHook, PlanDb, TuneOptions};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Pool-level knobs. All defaults are deterministic.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Concurrent worker rank-grids.
    pub workers: usize,
    /// Session-cache byte budget (0 disables warm starts).
    pub cache_bytes: usize,
    /// Admission control: submits beyond this queue depth are rejected.
    pub max_queue: usize,
    pub backend: Backend,
    /// Record one structured trace stream per job.
    pub record_traces: bool,
    /// Autotune solve plans: a session's first cold solve runs measurement
    /// trials and writes the shared plan DB; every later solve with the
    /// same key reuses the entry with zero trials. `None` disables tuning
    /// (the pre-tuner analytic defaults apply).
    pub tune: Option<TuneOptions>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            cache_bytes: 256 << 20,
            max_queue: 1024,
            backend: Backend::Nccl,
            record_traces: false,
            tune: None,
        }
    }
}

/// Why a submit was refused (backpressure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at `max_queue`; resubmit after a drain.
    QueueFull { capacity: usize },
    /// Job names are the deterministic tie-break and must be unique among
    /// queued jobs.
    DuplicateName(String),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs): backpressure, drain first")
            }
            SubmitError::DuplicateName(n) => write!(f, "duplicate job name '{n}'"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Pending<T: Scalar> {
    id: JobId,
    spec: JobSpec<T>,
}

/// Warm payload retained for a session between steps/drains.
struct StoreEntry<T: Scalar> {
    step: usize,
    bytes: usize,
    warm: Arc<WarmStart<T>>,
}

/// What one executed job hands back to the drain loop.
struct ExecResult<T: Scalar> {
    outcome: JobOutcome<T>,
    warm: WarmKind,
    trace: Option<Trace>,
}

struct ExecShared<T: Scalar> {
    ready: BTreeSet<(usize, usize)>,
    deps_left: Vec<usize>,
    results: Vec<Option<ExecResult<T>>>,
    store: BTreeMap<String, StoreEntry<T>>,
    warm_fallbacks: u64,
    plans_tuned: u64,
    plan_db_hits: u64,
    remaining: usize,
}

/// The multi-tenant solve scheduler.
pub struct Scheduler<T: Scalar + Reduce>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    cfg: SchedulerConfig,
    next_id: JobId,
    queue: Vec<Pending<T>>,
    cancelled: BTreeSet<JobId>,
    cache: SessionCache,
    store: BTreeMap<String, StoreEntry<T>>,
    /// Per-session cold baseline MatVecs (first cold completion) — the
    /// in-band reference for `matvecs_saved`.
    baselines: BTreeMap<String, u64>,
    /// Measured plan database shared by every worker. Lookups and inserts
    /// take the lock briefly; trials run outside it. Tuning is a
    /// deterministic function of the key, so concurrent misses on the same
    /// key produce identical entries and insertion is idempotent.
    plan_db: Arc<Mutex<PlanDb>>,
    pub metrics: ServeMetrics,
}

impl<T: Scalar + Reduce> Scheduler<T>
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    pub fn new(cfg: SchedulerConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        let cache = SessionCache::new(cfg.cache_bytes);
        Self {
            cfg,
            next_id: 1,
            queue: Vec::new(),
            cancelled: BTreeSet::new(),
            cache,
            store: BTreeMap::new(),
            baselines: BTreeMap::new(),
            plan_db: Arc::new(Mutex::new(PlanDb::new())),
            metrics: ServeMetrics::default(),
        }
    }

    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Seed the shared plan DB (e.g. loaded from disk before the first
    /// drain); solves whose key is present skip tuning entirely.
    pub fn set_plan_db(&mut self, db: PlanDb) {
        *self.plan_db.lock() = db;
    }

    /// Snapshot the shared plan DB (e.g. to persist after a drain).
    pub fn plan_db_snapshot(&self) -> PlanDb {
        self.plan_db.lock().clone()
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Resident `(session, step)` warm entries, deterministic order.
    pub fn cache_resident(&self) -> Vec<(String, usize)> {
        self.cache.resident()
    }

    /// Enqueue a job; rejects on backpressure or a duplicate name.
    pub fn submit(&mut self, spec: JobSpec<T>) -> Result<JobId, SubmitError> {
        if self.queue.iter().any(|p| p.spec.name == spec.name) {
            self.metrics.rejected += 1;
            return Err(SubmitError::DuplicateName(spec.name));
        }
        if self.queue.len() >= self.cfg.max_queue {
            self.metrics.rejected += 1;
            return Err(SubmitError::QueueFull {
                capacity: self.cfg.max_queue,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.metrics.submitted += 1;
        self.queue.push(Pending { id, spec });
        Ok(id)
    }

    /// Cancel a queued (not yet drained) job. Returns whether it was found.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if self.queue.iter().any(|p| p.id == id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Freeze the queued batch, plan it, execute it on the worker pool, and
    /// return one report per job (in submission-id order). The session
    /// cache and its warm payloads persist to the next drain.
    pub fn drain(&mut self) -> Vec<JobReport<T>> {
        self.metrics.drains += 1;
        let pending = std::mem::take(&mut self.queue);
        let mut reports: Vec<JobReport<T>> = Vec::new();
        let mut batch: Vec<Pending<T>> = Vec::new();
        for p in pending {
            if self.cancelled.remove(&p.id) {
                self.metrics.cancelled += 1;
                reports.push(JobReport {
                    id: p.id,
                    name: p.spec.name.clone(),
                    session: p.spec.session.clone(),
                    outcome: JobOutcome::Cancelled,
                    warm: WarmKind::Cold,
                    wait_ticks: 0,
                    start_tick: 0,
                    finish_tick: 0,
                    trace: None,
                });
            } else {
                batch.push(p);
            }
        }

        let specs: Vec<JobSpec<T>> = batch.iter().map(|p| p.spec.clone()).collect();
        let cache_before = self.cache.stats;
        let (plan, sim) = build_plan(&specs, self.cfg.workers, &mut self.cache);
        self.metrics.absorb_cache(cache_before, self.cache.stats);
        self.metrics.makespan_ticks += sim.makespan;
        self.metrics.total_wait_ticks += sim.total_wait;
        self.metrics.max_queue_depth = self.metrics.max_queue_depth.max(sim.max_queue_depth as u64);

        let results = self.execute(&specs, &plan);

        // Fold outcomes in canonical order so every counter update is
        // deterministic, then reconcile policy cache and payload store.
        let mut exec_results = results;
        for &i in &plan.order {
            let r = exec_results[i].as_ref().expect("planned job not executed");
            let tag = specs[i].session.clone();
            match &r.outcome {
                JobOutcome::Done(s) => {
                    self.metrics.completed += 1;
                    if !s.converged {
                        self.metrics.unconverged += 1;
                    }
                    if s.recovery
                        .any(|k| matches!(k, RecoveryEventKind::GridShrunk { .. }))
                    {
                        // The job lost a rank mid-solve and still completed:
                        // the elastic retry on the shrunk pool paid off.
                        self.metrics.rank_crash_retries += 1;
                    }
                    self.metrics.total_matvecs += s.matvecs;
                    match r.warm {
                        WarmKind::Warm => {
                            self.metrics.lanczos_skipped += 1;
                            if let Some(tag) = &tag {
                                if let Some(base) = self.baselines.get(&tag.id) {
                                    self.metrics.matvecs_saved += base.saturating_sub(s.matvecs);
                                }
                            }
                        }
                        WarmKind::Cold => {
                            self.metrics.cold_starts += 1;
                            if let Some(tag) = &tag {
                                self.baselines.entry(tag.id.clone()).or_insert(s.matvecs);
                            }
                        }
                        WarmKind::FallbackCold => {
                            self.metrics.cold_starts += 1;
                        }
                    }
                }
                JobOutcome::Failed(_) => self.metrics.failed += 1,
                JobOutcome::Cancelled | JobOutcome::DeadlineMissed => {}
            }
        }

        // Policy/payload reconciliation: the plan's shadow entries assumed
        // every producing job succeeds. Repair sessions whose payload is
        // missing (failure) or from an older step (failure after a good
        // step), then drop payloads the policy evicted.
        for (sid, meta_step) in self.cache.resident() {
            match self.store.get(&sid) {
                // Only sessions touched this drain can be inconsistent.
                None if specs
                    .iter()
                    .any(|s| s.session.as_ref().is_some_and(|t| t.id == sid)) =>
                {
                    self.cache.remove(&sid);
                }
                Some(e) if e.step != meta_step => {
                    let bytes = e.bytes;
                    let step = e.step;
                    self.cache.remove(&sid);
                    self.cache.insert(&sid, step, bytes);
                }
                _ => {}
            }
        }
        let cache_ref = &self.cache;
        self.store.retain(|sid, e| cache_ref.contains(sid, e.step));

        // Per-job reports.
        for (k, p) in batch.into_iter().enumerate() {
            let slot = sim.jobs[k];
            let r = exec_results[k].take().unwrap_or(ExecResult {
                outcome: JobOutcome::DeadlineMissed,
                warm: WarmKind::Cold,
                trace: None,
            });
            if matches!(r.outcome, JobOutcome::DeadlineMissed) {
                self.metrics.deadline_missed += 1;
            }
            reports.push(JobReport {
                id: p.id,
                name: p.spec.name,
                session: p.spec.session,
                outcome: r.outcome,
                warm: r.warm,
                wait_ticks: slot.wait,
                start_tick: slot.start,
                finish_tick: slot.finish,
                trace: r.trace,
            });
        }
        reports.sort_by_key(|r| r.id);
        reports
    }

    /// Execute the planned jobs on the worker pool. Returns one slot per
    /// batch index (None for deadline-missed jobs).
    fn execute(&mut self, specs: &[JobSpec<T>], plan: &Plan) -> Vec<Option<ExecResult<T>>> {
        let n = specs.len();
        let exec_count = plan.run.iter().filter(|r| **r).count();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut deps_left = vec![0usize; n];
        let mut ready: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (i, dep) in plan.dep.iter().enumerate() {
            if !plan.run[i] {
                continue;
            }
            match dep {
                Some(d) => {
                    dependents[*d].push(i);
                    deps_left[i] = 1;
                }
                None => {
                    ready.insert((plan.canon[i], i));
                }
            }
        }
        let shared = Mutex::new(ExecShared {
            ready,
            deps_left,
            results: (0..n).map(|_| None).collect(),
            store: std::mem::take(&mut self.store),
            warm_fallbacks: 0,
            plans_tuned: 0,
            plan_db_hits: 0,
            remaining: exec_count,
        });
        let cv = Condvar::new();
        let workers = self.cfg.workers.min(exec_count.max(1));
        let backend = self.cfg.backend;
        let record_traces = self.cfg.record_traces;
        let tune = self.cfg.tune.clone();
        let plan_db = self.plan_db.clone();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Claim the lowest-canonical ready job.
                    let (idx, warm_payload, warm_kind) = {
                        let mut g = shared.lock();
                        let claimed = loop {
                            if g.remaining == 0 {
                                return;
                            }
                            if let Some(&(c, i)) = g.ready.iter().next() {
                                g.ready.remove(&(c, i));
                                break i;
                            }
                            cv.wait(&mut g);
                        };
                        let crashy = specs[claimed]
                            .params
                            .inject
                            .as_ref()
                            .is_some_and(|s| !s.crash_sites().is_empty());
                        let (payload, kind) = if crashy {
                            // A crash-spec'd job runs the elastic path and
                            // resumes from its own checkpoints, not the
                            // session cache: the warm payload would be laid
                            // out for the pre-crash grid. Degrade planned
                            // warm starts down the ladder.
                            if plan.warm[claimed] {
                                g.warm_fallbacks += 1;
                                (None, WarmKind::FallbackCold)
                            } else {
                                (None, WarmKind::Cold)
                            }
                        } else if plan.warm[claimed] {
                            let tag = specs[claimed].session.as_ref().unwrap();
                            match g.store.get(&tag.id) {
                                Some(e) if e.step < tag.step => {
                                    (Some(e.warm.clone()), WarmKind::Warm)
                                }
                                _ => {
                                    // Predecessor failed: degrade to a cold
                                    // start instead of waiting or poisoning.
                                    g.warm_fallbacks += 1;
                                    (None, WarmKind::FallbackCold)
                                }
                            }
                        } else {
                            (None, WarmKind::Cold)
                        };
                        (claimed, payload, kind)
                    };

                    let (outcome, trace, tuned) = run_job(
                        &specs[idx],
                        warm_payload.as_deref(),
                        backend,
                        record_traces,
                        tune.as_ref(),
                        &plan_db,
                    );

                    let mut g = shared.lock();
                    match tuned {
                        Some(true) => g.plans_tuned += 1,
                        Some(false) => g.plan_db_hits += 1,
                        None => {}
                    }
                    if let Some(tag) = &specs[idx].session {
                        if let JobOutcome::Done(s) = &outcome {
                            g.store.insert(
                                tag.id.clone(),
                                StoreEntry {
                                    step: tag.step,
                                    bytes: specs[idx].cache_bytes(),
                                    warm: Arc::new(WarmStart {
                                        v0: s.eigenvectors.clone(),
                                        bounds: Some(s.bounds),
                                    }),
                                },
                            );
                        }
                        // On failure the predecessor's entry (if any) stays:
                        // later steps degrade to the last good subspace.
                    }
                    g.results[idx] = Some(ExecResult {
                        outcome,
                        warm: warm_kind,
                        trace,
                    });
                    g.remaining -= 1;
                    for &d in &dependents[idx] {
                        g.deps_left[d] -= 1;
                        if g.deps_left[d] == 0 {
                            g.ready.insert((plan.canon[d], d));
                        }
                    }
                    cv.notify_all();
                });
            }
        });

        let inner = shared.into_inner();
        self.store = inner.store;
        self.metrics.warm_fallbacks += inner.warm_fallbacks;
        self.metrics.plans_tuned += inner.plans_tuned;
        self.metrics.plan_db_hits += inner.plan_db_hits;
        inner.results
    }
}

/// Run one job on its own rank grid. Pure with respect to scheduler state:
/// everything it needs arrives as arguments, everything it learns leaves in
/// the return value (plus an idempotent plan-DB insert when it tuned).
///
/// The third return reports plan resolution: `Some(true)` = this job ran
/// measurement trials (cold DB), `Some(false)` = reused a DB entry with
/// zero trials, `None` = tuning disabled.
fn run_job<T: Scalar + Reduce>(
    spec: &JobSpec<T>,
    warm: Option<&WarmStart<T>>,
    backend: Backend,
    record_traces: bool,
    tune: Option<&TuneOptions>,
    plan_db: &Mutex<PlanDb>,
) -> (JobOutcome<T>, Option<Trace>, Option<bool>)
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    let h = spec.matrix.materialize();
    let params = spec.params.clone();
    if params
        .inject
        .as_ref()
        .is_some_and(|s| !s.crash_sites().is_empty())
    {
        // The job's fault spec plans a rank crash: route through the
        // elastic driver so the crash is survived by a shrink + checkpoint
        // resume instead of wedging the grid. Tuning is skipped — a
        // measured plan keyed to the original grid would be wrong for the
        // shrunk one.
        return run_job_elastic(spec, &h, backend, record_traces);
    }
    // Plan phase: decide hit-vs-tune once, before the SPMD region, so every
    // rank of the grid agrees (a per-rank DB lookup could straddle another
    // worker's insert and deadlock the grid's collectives).
    let cached = tune.map(|opts| {
        let key = plan_key::<T>(
            &opts.machine,
            spec.grid.p,
            spec.grid.q,
            h.rows(),
            params.nev,
            params.nex,
        );
        plan_db.lock().get(&key).cloned()
    });
    let out = chase_comm::run_grid(spec.grid, |ctx| {
        let rec = record_traces.then(|| Arc::new(TraceRecorder::new(ctx.world_rank())));
        if let Some(r) = &rec {
            ctx.set_trace_hook(Some(r.clone() as Arc<dyn chase_comm::TraceHook>));
        }
        let mut dh = DistHerm::from_global(&h, ctx);
        let mut params = params.clone();
        let entry = match &cached {
            Some(Some(e)) => Some(e.clone()),
            Some(None) => {
                let opts = tune.expect("tune options present on a DB miss");
                Some(tune_entry(ctx, &mut dh, params.nev, params.nex, opts).entry)
            }
            None => None,
        };
        if let Some(e) = &entry {
            params.apply_plan(&plan_from_entry(e));
            ctx.set_tune_hook(Some(Arc::new(MeasuredHook::new(e.clone()))));
        }
        let result = try_solve_dist_warm(ctx, backend, dh, &params, warm);
        ctx.set_tune_hook(None);
        if rec.is_some() {
            ctx.set_trace_hook(None);
        }
        (result, rec.map(|r| r.finish()), entry)
    });
    let mut oks: Vec<ChaseResult<T>> = Vec::new();
    let mut err = None;
    let mut rank_traces = Vec::new();
    let mut entry_out = None;
    for (res, tr, entry) in out.results {
        match res {
            Ok(r) => oks.push(r),
            Err(e) if err.is_none() => err = Some(e),
            Err(_) => {}
        }
        rank_traces.extend(tr);
        entry_out = entry_out.or(entry);
    }
    let tuned = match &cached {
        None => None,
        Some(Some(_)) => Some(false),
        Some(None) => {
            // Freshly measured (world-agreed, identical on every rank):
            // publish so later solves with this key run zero trials.
            if let Some(e) = entry_out {
                plan_db.lock().insert(e);
            }
            Some(true)
        }
    };
    let trace = record_traces.then_some(Trace { ranks: rank_traces });
    match err {
        Some(e) => (JobOutcome::Failed(e), trace, tuned),
        None => {
            let eigenvectors = ChaseResult::assemble_eigenvectors(&oks);
            let r0 = oks.into_iter().next().expect("at least one rank");
            (
                JobOutcome::Done(SolveOutput {
                    eigenvalues: r0.eigenvalues,
                    residuals: r0.residuals,
                    eigenvectors,
                    bounds: r0.bounds,
                    matvecs: r0.matvecs,
                    lowprec_matvecs: r0.lowprec_matvecs,
                    iterations: r0.iterations,
                    converged: r0.converged,
                    recovery: r0.recovery,
                    plan: r0.plan,
                }),
                trace,
                tuned,
            )
        }
    }
}

/// The elastic leg of [`run_job`]: a crash-spec'd job runs under
/// [`try_solve_elastic`], so a planned rank death mid-solve shrinks the
/// grid and resumes from the job's checkpoint directory (cold from
/// iteration 0 when none is configured). Ranks that leave the computation
/// (the victim, idled-out survivors) return `None` and contribute nothing;
/// the survivors' results assemble exactly like a normal solve because
/// together they still cover every row of the shrunk layout.
fn run_job_elastic<T: Scalar + Reduce>(
    spec: &JobSpec<T>,
    h: &Matrix<T>,
    backend: Backend,
    record_traces: bool,
) -> (JobOutcome<T>, Option<Trace>, Option<bool>)
where
    T::Real: Reduce,
    T::Lo: Reduce,
{
    let params = spec.params.clone();
    let out = chase_comm::run_grid(spec.grid, |ctx| {
        let rec = record_traces.then(|| Arc::new(TraceRecorder::new(ctx.world_rank())));
        if let Some(r) = &rec {
            ctx.set_trace_hook(Some(r.clone() as Arc<dyn chase_comm::TraceHook>));
        }
        let outcome = try_solve_elastic(ctx, backend, |c| DistHerm::from_global(h, c), &params);
        ctx.set_trace_hook(None);
        (outcome, rec.map(|r| r.finish()))
    });
    let mut oks: Vec<ChaseResult<T>> = Vec::new();
    let mut err = None;
    let mut rank_traces = Vec::new();
    for (res, tr) in out.results {
        if let Some(o) = res {
            match o.result {
                Ok(r) => oks.push(r),
                Err(e) if err.is_none() => err = Some(e),
                Err(_) => {}
            }
        }
        rank_traces.extend(tr);
    }
    let trace = record_traces.then_some(Trace { ranks: rank_traces });
    match err {
        Some(e) => (JobOutcome::Failed(e), trace, None),
        None if oks.is_empty() => {
            // Every rank left the computation — e.g. the victim of a 1x1
            // grid, which leaves no survivors to shrink onto.
            (
                JobOutcome::Failed(ChaseError {
                    kind: ChaseErrorKind::RankDead { dead: Vec::new() },
                    iter: 0,
                    recovery: RecoveryLog::default(),
                }),
                trace,
                None,
            )
        }
        None => {
            let eigenvectors = ChaseResult::assemble_eigenvectors(&oks);
            let r0 = oks.into_iter().next().expect("at least one rank");
            (
                JobOutcome::Done(SolveOutput {
                    eigenvalues: r0.eigenvalues,
                    residuals: r0.residuals,
                    eigenvectors,
                    bounds: r0.bounds,
                    matvecs: r0.matvecs,
                    lowprec_matvecs: r0.lowprec_matvecs,
                    iterations: r0.iterations,
                    converged: r0.converged,
                    recovery: r0.recovery,
                    plan: r0.plan,
                }),
                trace,
                None,
            )
        }
    }
}
