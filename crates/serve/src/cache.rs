//! The warm-start session cache *policy*: a deterministic LRU over
//! per-session metadata (entry sizes, logical stamps) under a byte budget.
//!
//! The policy layer is deliberately split from the payload store: eviction
//! and hit/miss decisions are made while *planning* a drain (walking jobs in
//! canonical order), so they are pure functions of the job set and the
//! budget — independent of worker count and completion interleaving. The
//! scheduler keeps the actual eigenvector payloads in a side store and
//! reconciles it against this policy cache after each drain.

use std::collections::BTreeMap;

/// Metadata for one resident session entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    /// Sequence step whose output this entry holds.
    step: usize,
    bytes: usize,
    /// Logical recency (monotone insert/touch counter) — the LRU key.
    stamp: u64,
}

/// Counters a planning walk accumulates (merged into the serve metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the predecessor step resident.
    pub hits: u64,
    /// Lookups by a sequence step whose predecessor had been evicted (or
    /// never fit).
    pub misses: u64,
    pub evictions: u64,
    /// Entries larger than the whole budget, never admitted.
    pub insert_rejects: u64,
    pub high_water_bytes: u64,
}

/// Deterministic LRU session cache (policy only — no payloads).
#[derive(Debug, Clone)]
pub struct SessionCache {
    budget: usize,
    used: usize,
    clock: u64,
    entries: BTreeMap<String, Slot>,
    pub stats: CacheStats,
}

impl SessionCache {
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes,
            used: 0,
            clock: 0,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn budget(&self) -> usize {
        self.budget
    }

    pub fn used(&self) -> usize {
        self.used
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `session` currently holds the output of exactly `step`.
    pub fn contains(&self, session: &str, step: usize) -> bool {
        self.entries.get(session).is_some_and(|s| s.step == step)
    }

    /// Warm-start lookup by step `step` of a sequence: hit iff the session
    /// holds the output of an *earlier* step (normally `step - 1`; after a
    /// dropped step or across drains, any prior state is a valid subspace).
    /// A hit renews the entry's recency.
    pub fn lookup(&mut self, session: &str, step: usize) -> bool {
        self.clock += 1;
        match self.entries.get_mut(session) {
            Some(slot) if slot.step < step => {
                slot.stamp = self.clock;
                self.stats.hits += 1;
                true
            }
            _ => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Insert (or replace) the session's entry, then evict least-recently
    /// used *other* sessions until the budget holds. Entries larger than
    /// the whole budget are rejected (and any stale entry dropped), so a
    /// single oversized tenant cannot wipe the cache.
    pub fn insert(&mut self, session: &str, step: usize, bytes: usize) {
        self.clock += 1;
        if bytes > self.budget {
            self.stats.insert_rejects += 1;
            if let Some(old) = self.entries.remove(session) {
                self.used -= old.bytes;
            }
            return;
        }
        let slot = Slot {
            step,
            bytes,
            stamp: self.clock,
        };
        if let Some(old) = self.entries.insert(session.to_string(), slot) {
            self.used -= old.bytes;
        }
        self.used += bytes;
        while self.used > self.budget {
            // Evict the lowest stamp; BTreeMap iteration makes ties (never
            // produced by the monotone clock) deterministic anyway.
            let victim = self
                .entries
                .iter()
                .filter(|(sid, _)| sid.as_str() != session)
                .min_by_key(|(_, s)| s.stamp)
                .map(|(sid, _)| sid.clone())
                .expect("over budget with no evictable entry");
            let gone = self.entries.remove(&victim).unwrap();
            self.used -= gone.bytes;
            self.stats.evictions += 1;
        }
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(self.used as u64);
    }

    /// Drop a session's entry (e.g. its producing job failed, so the
    /// payload never materialized).
    pub fn remove(&mut self, session: &str) {
        if let Some(old) = self.entries.remove(session) {
            self.used -= old.bytes;
        }
    }

    /// Resident `(session, step)` pairs in deterministic (key) order.
    pub fn resident(&self) -> Vec<(String, usize)> {
        self.entries
            .iter()
            .map(|(sid, s)| (sid.clone(), s.step))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_earlier_step() {
        let mut c = SessionCache::new(1024);
        c.insert("a", 1, 100);
        assert!(c.lookup("a", 2));
        assert!(!c.lookup("a", 1), "same step cannot warm itself");
        assert!(!c.lookup("a", 0), "out-of-order step must miss");
        assert!(!c.lookup("b", 1), "unknown session must miss");
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 3);
    }

    #[test]
    fn replace_same_session_does_not_leak_bytes() {
        let mut c = SessionCache::new(250);
        c.insert("a", 0, 100);
        c.insert("a", 1, 120);
        assert_eq!(c.used(), 120);
        assert!(c.contains("a", 1));
        assert_eq!(c.stats.evictions, 0);
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut c = SessionCache::new(300);
        c.insert("a", 0, 100);
        c.insert("b", 0, 100);
        c.insert("c", 0, 100);
        // Touch "a" so "b" is now the LRU.
        assert!(c.lookup("a", 1));
        c.insert("d", 0, 100);
        assert!(c.contains("a", 0));
        assert!(!c.contains("b", 0), "b was LRU and must be evicted");
        assert!(c.contains("c", 0));
        assert!(c.contains("d", 0));
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn oversized_entry_rejected_without_wiping_others() {
        let mut c = SessionCache::new(200);
        c.insert("a", 0, 150);
        c.insert("big", 0, 500);
        assert!(c.contains("a", 0));
        assert!(!c.contains("big", 0));
        assert_eq!(c.stats.insert_rejects, 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut c = SessionCache::new(300);
        c.insert("a", 0, 200);
        c.insert("b", 0, 100);
        c.insert("c", 0, 250); // evicts both
        assert_eq!(c.stats.high_water_bytes, 300);
        assert_eq!(c.used(), 250);
    }
}
