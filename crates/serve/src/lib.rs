//! `chase-serve` — a multi-tenant solve scheduler with a warm-start
//! session cache.
//!
//! Production eigensolver deployments rarely solve one problem: they serve
//! *sequences* of correlated problems (DFT self-consistency loops, BSE
//! parameter sweeps) for several tenants at once. This crate schedules such
//! workloads over a bounded pool of rank-grid workers:
//!
//! - **Sessions**: jobs tagged `(session, step)` form a correlated
//!   sequence; step `k + 1` starts from step `k`'s eigenvectors and
//!   spectral bounds (skipping the Lanczos estimate entirely), the
//!   approximation-reuse strategy the ChASE paper applies to sequences of
//!   correlated eigenproblems.
//! - **Session cache**: warm-start payloads are kept under a byte budget
//!   with deterministic LRU eviction ([`cache::SessionCache`]).
//! - **Deterministic scheduling**: every decision — dispatch order, warm
//!   vs. cold, eviction, even queue-wait metrics — is planned against a
//!   canonical order and a virtual-time simulation *before* execution
//!   ([`plan`], [`sim`]), so results are bitwise independent of submission
//!   order and worker count.
//! - **Isolation**: a failed job ([`chase_core::ChaseError`], recovery log
//!   attached) degrades only its own session to a cold restart; siblings
//!   and the pool are untouched.
//!
//! ```no_run
//! use chase_serve::{JobSpec, MatrixSource, Scheduler, SchedulerConfig, GenSpec, SpectrumKind};
//! use chase_core::Params;
//! use chase_linalg::C64;
//!
//! let mut sched: Scheduler<C64> = Scheduler::new(SchedulerConfig::default());
//! for step in 0..3 {
//!     let gen = GenSpec { n: 96, spectrum: SpectrumKind::Dft, seed: 7,
//!                         perturb_steps: step, eps: 1e-3 };
//!     let spec = JobSpec::new(format!("scf{step}"),
//!                             MatrixSource::Generated(gen),
//!                             Params::new(8, 4))
//!         .in_session("scf", step);
//!     sched.submit(spec).unwrap();
//! }
//! let reports = sched.drain();
//! assert!(reports.iter().all(|r| r.solve().is_some()));
//! ```

pub mod cache;
pub mod job;
pub mod metrics;
pub mod plan;
pub mod scheduler;
pub mod sim;
pub mod workload;

pub use cache::{CacheStats, SessionCache};
pub use chase_tune::{PlanDb, TuneOptions};
pub use job::{
    GenSpec, JobId, JobOutcome, JobReport, JobSpec, MatrixSource, SessionTag, SolveOutput,
    SpectrumKind, WarmKind,
};
pub use metrics::ServeMetrics;
pub use scheduler::{Scheduler, SchedulerConfig, SubmitError};
pub use workload::{parse_workload, validate_line};
