//! Deterministic virtual-time simulation of the worker pool.
//!
//! The scheduler never consults a wall clock: queue-wait, start/finish
//! times, queue depth and deadline misses all come from this discrete-event
//! simulation over per-job *virtual costs* (default `n * ne`). The sim is a
//! pure function of the job set and the worker count, so every scheduling
//! metric replays bitwise — the real pool merely executes the work.

use std::collections::BTreeSet;

/// One job as the simulator sees it.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Virtual duration (ticks).
    pub cost: u64,
    /// Index of the session predecessor that must finish first, if any.
    pub dep: Option<usize>,
    /// Latest acceptable *start* tick; jobs past it are dropped unstarted.
    pub deadline: Option<u64>,
    /// Canonical-order rank (lower dispatches first among ready jobs).
    pub canon: usize,
}

/// Simulated schedule of one job.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimSlot {
    pub start: u64,
    pub finish: u64,
    /// Ticks spent ready-but-undispatched (pool saturated).
    pub wait: u64,
    /// Dropped: its simulated start would have passed the deadline.
    pub missed: bool,
}

/// Aggregates over the whole simulated drain.
#[derive(Debug, Clone, Default)]
pub struct SimOutcome {
    pub jobs: Vec<SimSlot>,
    pub makespan: u64,
    pub max_queue_depth: usize,
    pub total_wait: u64,
    /// Dispatch order (job indices) — with one worker this is the canonical
    /// serialization the cache plan walks.
    pub dispatch_order: Vec<usize>,
}

/// Run the event loop: at every instant, ready jobs dispatch to free
/// workers in canonical-rank order; completions are processed in
/// (finish, canon) order. Entirely integer arithmetic — bitwise
/// reproducible.
pub fn simulate(jobs: &[SimJob], workers: usize) -> SimOutcome {
    assert!(workers >= 1);
    let n = jobs.len();
    let mut out = SimOutcome {
        jobs: vec![SimSlot::default(); n],
        ..Default::default()
    };
    // blocked[i]: dep not yet finished. ready: (canon, idx).
    let mut ready: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut ready_since = vec![0u64; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pending = 0usize;
    for (i, j) in jobs.iter().enumerate() {
        match j.dep {
            Some(d) => {
                dependents[d].push(i);
                pending += 1;
            }
            None => {
                ready.insert((j.canon, i));
            }
        }
    }
    // Running set ordered by (finish, canon, idx).
    let mut running: BTreeSet<(u64, usize, usize)> = BTreeSet::new();
    let mut free = workers;
    let mut t = 0u64;

    loop {
        // Dispatch phase: fill free workers in canonical order. Deadline
        // misses complete instantly (no worker consumed) and release their
        // dependents, which will start cold.
        while let Some(&(canon, i)) = ready.first() {
            let job = &jobs[i];
            if job.deadline.is_some_and(|d| t > d) {
                ready.remove(&(canon, i));
                out.jobs[i] = SimSlot {
                    start: t,
                    finish: t,
                    wait: t - ready_since[i],
                    missed: true,
                };
                out.dispatch_order.push(i);
                for &d in &dependents[i] {
                    ready.insert((jobs[d].canon, d));
                    ready_since[d] = t;
                    pending -= 1;
                }
                continue;
            }
            if free == 0 {
                break;
            }
            ready.remove(&(canon, i));
            free -= 1;
            let wait = t - ready_since[i];
            out.jobs[i] = SimSlot {
                start: t,
                finish: t + job.cost,
                wait,
                missed: false,
            };
            out.total_wait += wait;
            out.dispatch_order.push(i);
            running.insert((t + job.cost, canon, i));
        }
        out.max_queue_depth = out.max_queue_depth.max(ready.len());

        if running.is_empty() {
            assert!(ready.is_empty() && pending == 0, "sim deadlock");
            break;
        }
        // Advance to the next completion; process every completion at that
        // instant in (canon) order before dispatching again.
        let &(finish, _, _) = running.iter().next().unwrap();
        t = finish;
        while let Some(&(f, c, i)) = running.iter().next() {
            if f != t {
                break;
            }
            running.remove(&(f, c, i));
            free += 1;
            for &d in &dependents[i] {
                ready.insert((jobs[d].canon, d));
                ready_since[d] = t;
                pending -= 1;
            }
        }
    }
    out.makespan = t;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(cost: u64, dep: Option<usize>, deadline: Option<u64>, canon: usize) -> SimJob {
        SimJob {
            cost,
            dep,
            deadline,
            canon,
        }
    }

    #[test]
    fn single_worker_serializes_in_canon_order() {
        let jobs = vec![
            job(10, None, None, 2),
            job(10, None, None, 0),
            job(10, None, None, 1),
        ];
        let out = simulate(&jobs, 1);
        assert_eq!(out.dispatch_order, vec![1, 2, 0]);
        assert_eq!(out.makespan, 30);
        assert_eq!(out.jobs[1].start, 0);
        assert_eq!(out.jobs[0].start, 20);
        assert_eq!(out.jobs[0].wait, 20);
    }

    #[test]
    fn dependencies_gate_dispatch() {
        // chain a(10) -> b(5); c independent.
        let jobs = vec![
            job(10, None, None, 0),
            job(5, Some(0), None, 1),
            job(7, None, None, 2),
        ];
        let out = simulate(&jobs, 2);
        assert_eq!(out.jobs[1].start, 10);
        assert_eq!(out.jobs[2].start, 0);
        assert_eq!(out.makespan, 15);
        assert_eq!(out.jobs[1].wait, 0, "became ready at 10, started at 10");
    }

    #[test]
    fn deadline_drops_job_but_releases_chain() {
        // One worker: first job runs 100 ticks; second's deadline is 50 so
        // it is dropped; its dependent still runs (cold).
        let jobs = vec![
            job(100, None, None, 0),
            job(10, None, Some(50), 1),
            job(10, Some(1), None, 2),
        ];
        let out = simulate(&jobs, 1);
        assert!(out.jobs[1].missed);
        assert!(!out.jobs[2].missed);
        assert_eq!(out.jobs[2].start, 100);
        assert_eq!(out.makespan, 110);
    }

    #[test]
    fn more_workers_shrink_makespan_not_results() {
        let jobs: Vec<_> = (0..6).map(|i| job(10, None, None, i)).collect();
        let w1 = simulate(&jobs, 1);
        let w3 = simulate(&jobs, 3);
        assert_eq!(w1.makespan, 60);
        assert_eq!(w3.makespan, 20);
        assert!(w3.total_wait < w1.total_wait);
    }

    #[test]
    fn queue_depth_counts_backlog() {
        let jobs: Vec<_> = (0..5).map(|i| job(10, None, None, i)).collect();
        let out = simulate(&jobs, 1);
        assert_eq!(out.max_queue_depth, 4);
    }
}
