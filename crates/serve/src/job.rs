//! Job descriptions and reports for the solve scheduler.

use chase_comm::GridShape;
use chase_core::{ChaseError, Params, RecoveryLog};
use chase_linalg::{Matrix, Scalar, SpectralBounds};
use chase_matgen::{dense_with_spectrum, perturb_hermitian, Spectrum};
use chase_trace::Trace;
use std::sync::Arc;

/// Scheduler-assigned job handle (monotone per scheduler instance).
pub type JobId = u64;

/// Tags a job as step `step` of the correlated sequence `id`: the session
/// cache hands step `k`'s eigenpairs to step `k + 1` automatically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionTag {
    pub id: String,
    pub step: usize,
}

/// Named spectrum shapes for generated (synthetic) workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpectrumKind {
    Uniform,
    Dft,
    Bse,
    Geometric,
}

impl SpectrumKind {
    pub fn build(self, n: usize) -> Spectrum {
        match self {
            SpectrumKind::Uniform => Spectrum::uniform(n, -1.0, 1.0),
            SpectrumKind::Dft => Spectrum::dft_like(n),
            SpectrumKind::Bse => Spectrum::bse_like(n),
            SpectrumKind::Geometric => Spectrum::geometric(n, 1e-3, 1.0),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            SpectrumKind::Uniform => "uniform",
            SpectrumKind::Dft => "dft",
            SpectrumKind::Bse => "bse",
            SpectrumKind::Geometric => "geometric",
        }
    }
}

impl std::str::FromStr for SpectrumKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "uniform" => Ok(SpectrumKind::Uniform),
            "dft" => Ok(SpectrumKind::Dft),
            "bse" => Ok(SpectrumKind::Bse),
            "geometric" => Ok(SpectrumKind::Geometric),
            other => Err(format!(
                "unknown spectrum '{other}' (uniform|dft|bse|geometric)"
            )),
        }
    }
}

/// Deterministic on-demand matrix: a spectrum surrogate perturbed
/// `perturb_steps` times — step `k` of a synthetic SCF chain.
#[derive(Debug, Clone)]
pub struct GenSpec {
    pub n: usize,
    pub spectrum: SpectrumKind,
    pub seed: u64,
    /// SCF chain position: how many successive Hermitian perturbations of
    /// strength `eps` to apply to the base matrix.
    pub perturb_steps: usize,
    pub eps: f64,
}

impl GenSpec {
    pub fn materialize<T: Scalar>(&self) -> Matrix<T> {
        let mut h = dense_with_spectrum::<T>(&self.spectrum.build(self.n), self.seed);
        for k in 0..self.perturb_steps {
            h = perturb_hermitian(&h, self.eps, self.seed ^ 0x5eed_0000 ^ k as u64);
        }
        h
    }
}

/// Where a job's Hermitian matrix comes from.
#[derive(Debug, Clone)]
pub enum MatrixSource<T: Scalar> {
    /// Shared in-memory matrix (e.g. loaded from a `.chasemat` file once).
    InMemory(Arc<Matrix<T>>),
    /// Generated on demand inside the worker (deterministic in the spec).
    Generated(GenSpec),
}

impl<T: Scalar> MatrixSource<T> {
    pub fn n(&self) -> usize {
        match self {
            MatrixSource::InMemory(m) => m.rows(),
            MatrixSource::Generated(g) => g.n,
        }
    }

    pub fn materialize(&self) -> Arc<Matrix<T>> {
        match self {
            MatrixSource::InMemory(m) => m.clone(),
            MatrixSource::Generated(g) => Arc::new(g.materialize()),
        }
    }
}

/// One solve request. Scheduling decisions depend only on the fields here
/// (never on submission order or wall clock), so a job set produces
/// bitwise-identical results however it is interleaved.
#[derive(Debug, Clone)]
pub struct JobSpec<T: Scalar> {
    /// Stable identity; the final tie-break of the canonical order. Make it
    /// unique per (session, step) — duplicates are rejected at submit.
    pub name: String,
    pub matrix: MatrixSource<T>,
    pub params: Params,
    /// Rank grid the worker runs this solve on.
    pub grid: GridShape,
    pub session: Option<SessionTag>,
    /// 0..=9, higher dispatches first.
    pub priority: u8,
    /// Virtual-tick deadline; a job whose simulated start would exceed it
    /// is dropped with [`JobOutcome::DeadlineMissed`] instead of running.
    pub deadline: Option<u64>,
    /// Virtual duration for the tick simulation; defaults to `n * ne`.
    pub cost_hint: Option<u64>,
}

impl<T: Scalar> JobSpec<T> {
    /// A standalone job with default knobs (priority 4, no deadline).
    pub fn new(name: impl Into<String>, matrix: MatrixSource<T>, params: Params) -> Self {
        Self {
            name: name.into(),
            matrix,
            params,
            grid: GridShape::new(1, 1),
            session: None,
            priority: 4,
            deadline: None,
            cost_hint: None,
        }
    }

    /// Tag this job as step `step` of session `id`.
    pub fn in_session(mut self, id: impl Into<String>, step: usize) -> Self {
        self.session = Some(SessionTag {
            id: id.into(),
            step,
        });
        self
    }

    /// Virtual duration used by the tick simulation.
    pub fn cost(&self) -> u64 {
        self.cost_hint
            .unwrap_or((self.matrix.n() * self.params.ne()) as u64)
            .max(1)
    }

    /// Bytes the session cache pays to keep this job's output resident
    /// (the `n x nev` eigenvector block plus the spectral bounds).
    pub fn cache_bytes(&self) -> usize {
        self.matrix.n() * self.params.nev * std::mem::size_of::<T>()
            + std::mem::size_of::<SpectralBounds<T::Real>>()
    }

    /// Total order key for deterministic scheduling: priority first (higher
    /// is more urgent), then earliest deadline, then session/step/name.
    /// Independent of submission order by construction.
    pub(crate) fn canon_key(&self) -> (u8, u64, String, usize, String) {
        let (sid, step) = match &self.session {
            Some(s) => (s.id.clone(), s.step),
            None => (self.name.clone(), 0),
        };
        (
            u8::MAX - self.priority,
            self.deadline.unwrap_or(u64::MAX),
            sid,
            step,
            self.name.clone(),
        )
    }
}

/// How a job's initial subspace was sourced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmKind {
    /// Random start (first step of a session, standalone job, or evicted
    /// cache entry).
    Cold,
    /// Started from the session cache (previous eigenvectors + bounds).
    Warm,
    /// The plan promised a warm start but the predecessor failed; the job
    /// ran cold rather than poisoning the pool.
    FallbackCold,
}

/// Everything a successful solve returns to the submitter.
#[derive(Debug, Clone)]
pub struct SolveOutput<T: Scalar> {
    pub eigenvalues: Vec<T::Real>,
    pub residuals: Vec<T::Real>,
    /// Assembled global eigenvector block (`n x nev`).
    pub eigenvectors: Matrix<T>,
    pub bounds: SpectralBounds<T::Real>,
    pub matvecs: u64,
    /// Portion of `matvecs` executed in the demoted precision `T::Lo`
    /// (zero unless the job asked for `precision=mixed`).
    pub lowprec_matvecs: u64,
    pub iterations: usize,
    pub converged: bool,
    /// Guard-layer record (empty on a clean run).
    pub recovery: RecoveryLog,
    /// Resolved solve plan (provenance: manual, analytic, or measured plan
    /// database) when the scheduler tunes; `None` with tuning disabled.
    pub plan: Option<chase_core::SolvePlan>,
}

/// Terminal state of one job.
#[derive(Debug, Clone)]
pub enum JobOutcome<T: Scalar> {
    Done(SolveOutput<T>),
    /// The recovery ladder exhausted its budget; the error carries the
    /// recovery log. Siblings and the pool are unaffected.
    Failed(ChaseError),
    Cancelled,
    DeadlineMissed,
}

/// Per-job report handed back by [`crate::Scheduler::drain`].
#[derive(Debug, Clone)]
pub struct JobReport<T: Scalar> {
    pub id: JobId,
    pub name: String,
    pub session: Option<SessionTag>,
    pub outcome: JobOutcome<T>,
    pub warm: WarmKind,
    /// Virtual-tick schedule (deterministic; no wall clock).
    pub wait_ticks: u64,
    pub start_tick: u64,
    pub finish_tick: u64,
    /// Per-job structured trace when the scheduler records traces.
    pub trace: Option<Trace>,
}

impl<T: Scalar> JobReport<T> {
    pub fn solve(&self) -> Option<&SolveOutput<T>> {
        match &self.outcome {
            JobOutcome::Done(s) => Some(s),
            _ => None,
        }
    }

    pub fn failed(&self) -> Option<&ChaseError> {
        match &self.outcome {
            JobOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}
