//! Line-oriented workload files for `chase serve` / `chase submit`.
//!
//! One job per line, `#` comments and blank lines ignored:
//!
//! ```text
//! # file-backed job
//! job name=scf0 matrix=h.chasemat nev=8 nex=4 session=scf step=0
//! # generated job: a synthetic SCF chain member (deterministic in the spec)
//! gen name=scf1 n=96 spectrum=dft gseed=3 perturb=1 eps=1e-3 nev=8 session=scf step=1
//! ```
//!
//! Shared keys: `name=` (required, unique), `nev=` (required), `nex=`,
//! `tol=`, `session=` + `step=`, `priority=0..9`, `deadline=TICKS`,
//! `grid=PxQ`, `seed=` (solver start seed), `cost=TICKS`, `inject=SPEC`
//! (deterministic fault campaign, same grammar as `chase solve --inject`),
//! `refilter=N` (recovery re-filter budget; 0 makes an injected corruption
//! fatal — useful for isolation drills).
//! `job` lines add `matrix=FILE`; `gen` lines add `n=`, `spectrum=`,
//! `gseed=`, `perturb=STEPS`, `eps=`.
//!
//! Parsing is order-preserving but the scheduler's plan is not order
//! *dependent*: shuffling the lines changes nothing about the results.

use crate::job::{GenSpec, JobSpec, MatrixSource, SpectrumKind};
use chase_comm::GridShape;
use chase_core::Params;
use chase_linalg::{Matrix, C64};
use chase_matgen::io::{load, LoadedMatrix};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

fn parse_kv(line: &str) -> Result<HashMap<String, String>, String> {
    let mut kv = HashMap::new();
    for tok in line.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{tok}'"))?;
        if kv.insert(k.to_string(), v.to_string()).is_some() {
            return Err(format!("duplicate key '{k}'"));
        }
    }
    Ok(kv)
}

fn take<T: std::str::FromStr>(
    kv: &HashMap<String, String>,
    key: &str,
    default: Option<T>,
) -> Result<T, String> {
    match kv.get(key) {
        Some(v) => v.parse().map_err(|_| format!("{key}: cannot parse '{v}'")),
        None => default.ok_or_else(|| format!("missing required {key}=")),
    }
}

fn parse_grid(s: &str) -> Result<GridShape, String> {
    let (p, q) = s.split_once('x').ok_or("grid must look like 2x2")?;
    Ok(GridShape::new(
        p.parse().map_err(|_| "bad grid rows")?,
        q.parse().map_err(|_| "bad grid cols")?,
    ))
}

/// Matrices loaded once per path and shared across jobs via `Arc`.
#[derive(Default)]
struct FileCache {
    loaded: BTreeMap<String, Arc<Matrix<C64>>>,
}

impl FileCache {
    fn get(&mut self, path: &str) -> Result<Arc<Matrix<C64>>, String> {
        if let Some(m) = self.loaded.get(path) {
            return Ok(m.clone());
        }
        let m = match load(path).map_err(|e| format!("{path}: {e}"))? {
            LoadedMatrix::C64(h) => h,
            // Real matrices promote losslessly; the serve path is uniformly
            // complex so every session can share one cache.
            LoadedMatrix::F64(h) => {
                Matrix::from_fn(h.rows(), h.cols(), |i, j| C64::new(h.col(j)[i], 0.0))
            }
        };
        let arc = Arc::new(m);
        self.loaded.insert(path.to_string(), arc.clone());
        Ok(arc)
    }
}

fn parse_job_line(
    kind: &str,
    kv: &HashMap<String, String>,
    files: &mut FileCache,
) -> Result<JobSpec<C64>, String> {
    let known: &[&str] = match kind {
        "job" => &[
            "name",
            "matrix",
            "nev",
            "nex",
            "tol",
            "session",
            "step",
            "priority",
            "deadline",
            "grid",
            "seed",
            "cost",
            "inject",
            "refilter",
            "precision",
        ],
        "gen" => &[
            "name",
            "n",
            "spectrum",
            "gseed",
            "perturb",
            "eps",
            "nev",
            "nex",
            "tol",
            "session",
            "step",
            "priority",
            "deadline",
            "grid",
            "seed",
            "cost",
            "inject",
            "refilter",
            "precision",
        ],
        other => return Err(format!("unknown line kind '{other}' (job|gen)")),
    };
    for k in kv.keys() {
        if !known.contains(&k.as_str()) {
            return Err(format!("unknown key '{k}' for a '{kind}' line"));
        }
    }

    let name: String = take(kv, "name", None)?;
    let matrix = match kind {
        "job" => {
            let path: String = take(kv, "matrix", None)?;
            MatrixSource::InMemory(files.get(&path)?)
        }
        _ => {
            let n: usize = take(kv, "n", None)?;
            let spectrum: SpectrumKind = take(kv, "spectrum", None)?;
            MatrixSource::Generated(GenSpec {
                n,
                spectrum,
                seed: take(kv, "gseed", Some(42))?,
                perturb_steps: take(kv, "perturb", Some(0))?,
                eps: take(kv, "eps", Some(1e-3))?,
            })
        }
    };

    let nev: usize = take(kv, "nev", None)?;
    let nex: usize = take(kv, "nex", Some(nev.div_ceil(2).max(2)))?;
    let n = matrix.n();
    if nev + nex > n {
        return Err(format!(
            "job '{name}': search space nev + nex = {} exceeds matrix size {n}",
            nev + nex
        ));
    }
    let mut params = Params::new(nev, nex);
    params.tol = take(kv, "tol", Some(1e-10))?;
    params.seed = take(kv, "seed", Some(params.seed))?;
    if let Some(spec) = kv.get("inject") {
        params.inject = Some(
            spec.parse::<chase_faults::FaultSpec>()
                .map_err(|e| format!("job '{name}': inject: {e}"))?,
        );
    }
    params.max_refilter = take(kv, "refilter", Some(params.max_refilter))?;
    if let Some(p) = kv.get("precision") {
        params.precision = p
            .parse()
            .map_err(|e| format!("job '{name}': precision: {e}"))?;
    }

    let mut spec = JobSpec::new(name.clone(), matrix, params);
    if let Some(g) = kv.get("grid") {
        spec.grid = parse_grid(g).map_err(|e| format!("job '{name}': {e}"))?;
    }
    match (kv.get("session"), kv.get("step")) {
        (Some(sid), step) => {
            let step: usize = match step {
                Some(s) => s.parse().map_err(|_| format!("job '{name}': bad step"))?,
                None => 0,
            };
            spec = spec.in_session(sid.clone(), step);
        }
        (None, Some(_)) => {
            return Err(format!("job '{name}': step= requires session="));
        }
        (None, None) => {}
    }
    spec.priority = take(kv, "priority", Some(4u8))?;
    if spec.priority > 9 {
        return Err(format!("job '{name}': priority must be 0..=9"));
    }
    spec.deadline = kv
        .get("deadline")
        .map(|d| d.parse().map_err(|_| format!("job '{name}': bad deadline")))
        .transpose()?;
    spec.cost_hint = kv
        .get("cost")
        .map(|c| c.parse().map_err(|_| format!("job '{name}': bad cost")))
        .transpose()?;
    Ok(spec)
}

/// Parse a workload file body into job specs (line numbers in errors).
pub fn parse_workload(text: &str) -> Result<Vec<JobSpec<C64>>, String> {
    let mut files = FileCache::default();
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kind, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let kv = parse_kv(rest).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let spec = parse_job_line(kind, &kv, &mut files)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        jobs.push(spec);
    }
    Ok(jobs)
}

/// Validate a single workload line (as `chase submit` appends it). Performs
/// the full parse, including loading a `matrix=` file.
pub fn validate_line(line: &str) -> Result<JobSpec<C64>, String> {
    let jobs = parse_workload(line)?;
    match jobs.len() {
        1 => Ok(jobs.into_iter().next().unwrap()),
        0 => Err("line is empty or a comment".into()),
        _ => Err("expected exactly one job line".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_gen_lines_with_sessions() {
        let text = "\
# two-step synthetic chain plus a standalone
gen name=s0 n=48 spectrum=dft gseed=7 nev=6 session=scf step=0
gen name=s1 n=48 spectrum=dft gseed=7 perturb=1 eps=1e-3 nev=6 session=scf step=1
gen name=solo n=32 spectrum=uniform nev=4 priority=9 deadline=5000
";
        let jobs = parse_workload(text).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].session.as_ref().unwrap().id, "scf");
        assert_eq!(jobs[1].session.as_ref().unwrap().step, 1);
        assert_eq!(jobs[2].priority, 9);
        assert_eq!(jobs[2].deadline, Some(5000));
        assert!(jobs[2].session.is_none());
    }

    #[test]
    fn inject_spec_round_trips() {
        let line = "gen name=f n=32 spectrum=uniform nev=4 inject=seed=5;breakdown@iter=1,cols=2";
        let spec = validate_line(line).unwrap();
        assert!(spec.params.inject.is_some());
    }

    #[test]
    fn rejects_unknown_keys_and_bad_shapes() {
        assert!(parse_workload("job name=a nev=2")
            .unwrap_err()
            .contains("matrix"));
        assert!(
            parse_workload("gen name=a n=8 spectrum=uniform nev=2 bogus=1")
                .unwrap_err()
                .contains("bogus")
        );
        assert!(parse_workload("gen name=a n=8 spectrum=uniform nev=40")
            .unwrap_err()
            .contains("exceeds"));
        assert!(
            parse_workload("gen name=a n=8 spectrum=uniform nev=2 step=1")
                .unwrap_err()
                .contains("session")
        );
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let jobs = parse_workload("\n# nothing\n\n").unwrap();
        assert!(jobs.is_empty());
    }
}
