//! Drain planning: canonical ordering, session chaining, deadline
//! admission, and the warm/cold decision walk.
//!
//! Determinism argument (DESIGN.md §11): every decision below is a pure
//! function of the job *set* (their specs, never their submission order),
//! the worker count, and the persisted cache state. Warm/cold decisions are
//! made by walking jobs in the canonical serialization — the order a
//! one-worker pool would dispatch — so the cache policy is independent of
//! how many workers later execute the plan and of which finishes first.
//! Workers only compute; they never mutate scheduler state out of order.

use crate::cache::SessionCache;
use crate::job::JobSpec;
use crate::sim::{simulate, SimJob, SimOutcome};
use chase_linalg::Scalar;
use std::collections::BTreeMap;

/// The frozen decisions for one drain.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Canonical-order rank per job (total order over the batch).
    pub canon: Vec<usize>,
    /// Executes this drain (false = deadline missed, reported unstarted).
    pub run: Vec<bool>,
    /// Starts from the session cache (predecessor eigenpairs + bounds).
    pub warm: Vec<bool>,
    /// Execution dependency: the in-batch predecessor whose output this
    /// (warm) job consumes. `None` for cold jobs and for warm starts served
    /// from a previous drain's persisted entry.
    pub dep: Vec<Option<usize>>,
    /// Canonical serialization of the running jobs (the cache-walk order).
    pub order: Vec<usize>,
}

/// Session chaining: for every job, the nearest earlier step of the same
/// session within `eligible`, following (step, name) order.
fn chains<T: Scalar>(specs: &[JobSpec<T>], eligible: &[bool]) -> Vec<Option<usize>> {
    let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, s) in specs.iter().enumerate() {
        if let Some(tag) = &s.session {
            if eligible[i] {
                groups.entry(tag.id.as_str()).or_default().push(i);
            }
        }
    }
    let mut dep = vec![None; specs.len()];
    for members in groups.values_mut() {
        members.sort_by(|&a, &b| {
            let ta = specs[a].session.as_ref().unwrap();
            let tb = specs[b].session.as_ref().unwrap();
            (ta.step, &specs[a].name).cmp(&(tb.step, &specs[b].name))
        });
        for w in members.windows(2) {
            dep[w[1]] = Some(w[0]);
        }
    }
    dep
}

/// Build the drain plan and its virtual-time schedule.
///
/// `cache` is the scheduler's persisted policy cache: the walk mutates it
/// (lookups renew recency, inserts evict), which is exactly how residency
/// carries across drains.
pub fn build_plan<T: Scalar>(
    specs: &[JobSpec<T>],
    workers: usize,
    cache: &mut SessionCache,
) -> (Plan, SimOutcome) {
    let n = specs.len();
    // Canonical total order: priority, deadline, session, step, name.
    let mut by_key: Vec<usize> = (0..n).collect();
    by_key.sort_by_key(|&i| specs[i].canon_key());
    let mut canon = vec![0usize; n];
    for (rank, &i) in by_key.iter().enumerate() {
        canon[i] = rank;
    }

    // Virtual-time schedule with full session chains: yields wait/start
    // ticks, queue depth, and the deadline-miss set.
    let all = vec![true; n];
    let dep_full = chains(specs, &all);
    let sim_jobs: Vec<SimJob> = (0..n)
        .map(|i| SimJob {
            cost: specs[i].cost(),
            dep: dep_full[i],
            deadline: specs[i].deadline,
            canon: canon[i],
        })
        .collect();
    let sim = simulate(&sim_jobs, workers);
    let run: Vec<bool> = sim.jobs.iter().map(|s| !s.missed).collect();

    // Chains among the jobs that actually run (a missed step drops out of
    // its session's hand-off chain; the successor starts cold or from a
    // persisted entry).
    let dep_run = chains(specs, &run);

    // Canonical serialization of the running jobs: greedy lowest-rank-first
    // among jobs whose chain predecessor is already placed — the dispatch
    // order of a one-worker pool, computed without costs.
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let runnable = run.iter().filter(|r| **r).count();
    while order.len() < runnable {
        let next = by_key
            .iter()
            .copied()
            .find(|&i| run[i] && !placed[i] && dep_run[i].is_none_or(|d| placed[d]))
            .expect("session chains are acyclic");
        placed[next] = true;
        order.push(next);
    }

    // Warm/cold walk in canonical order against the policy cache. A budget
    // of zero disables warm starts without touching the counters.
    let mut warm = vec![false; n];
    let mut dep = vec![None; n];
    if cache.budget() > 0 {
        for &i in &order {
            if let Some(tag) = &specs[i].session {
                if tag.step > 0 {
                    warm[i] = cache.lookup(&tag.id, tag.step);
                }
                if warm[i] {
                    // Data flows from the in-batch predecessor when there is
                    // one; otherwise it is already persisted in the store.
                    dep[i] = dep_run[i];
                }
                cache.insert(&tag.id, tag.step, specs[i].cache_bytes());
            }
        }
    }

    (
        Plan {
            canon,
            run,
            warm,
            dep,
            order,
        },
        sim,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{GenSpec, JobSpec, MatrixSource, SpectrumKind};
    use chase_core::Params;
    use chase_linalg::C64;

    fn spec(name: &str, session: Option<(&str, usize)>, priority: u8) -> JobSpec<C64> {
        let mut s = JobSpec::new(
            name,
            MatrixSource::Generated(GenSpec {
                n: 32,
                spectrum: SpectrumKind::Uniform,
                seed: 1,
                perturb_steps: 0,
                eps: 0.0,
            }),
            Params::new(4, 2),
        );
        s.priority = priority;
        if let Some((id, step)) = session {
            s = s.in_session(id, step);
        }
        s
    }

    #[test]
    fn canonical_order_is_submission_independent() {
        let a = vec![
            spec("x", None, 4),
            spec("y", Some(("s", 0)), 4),
            spec("z", Some(("s", 1)), 4),
        ];
        let b = vec![a[2].clone(), a[0].clone(), a[1].clone()];
        let (pa, _) = build_plan(&a, 2, &mut SessionCache::new(1 << 20));
        let (pb, _) = build_plan(&b, 2, &mut SessionCache::new(1 << 20));
        let names_a: Vec<_> = pa.order.iter().map(|&i| a[i].name.clone()).collect();
        let names_b: Vec<_> = pb.order.iter().map(|&i| b[i].name.clone()).collect();
        assert_eq!(names_a, names_b);
        // Warm decisions travel with the names, not the indices.
        let warm_a: Vec<_> = pa.order.iter().map(|&i| pa.warm[i]).collect();
        let warm_b: Vec<_> = pb.order.iter().map(|&i| pb.warm[i]).collect();
        assert_eq!(warm_a, warm_b);
    }

    #[test]
    fn session_steps_warm_chain() {
        let jobs = vec![
            spec("a", Some(("s", 0)), 4),
            spec("b", Some(("s", 1)), 4),
            spec("c", Some(("s", 2)), 4),
        ];
        let (p, _) = build_plan(&jobs, 1, &mut SessionCache::new(1 << 20));
        assert_eq!(p.warm, vec![false, true, true]);
        assert_eq!(p.dep, vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn priority_outranks_name() {
        let jobs = vec![spec("a", None, 2), spec("b", None, 9)];
        let (p, _) = build_plan(&jobs, 1, &mut SessionCache::new(1 << 20));
        assert_eq!(p.order, vec![1, 0]);
    }

    #[test]
    fn zero_budget_runs_everything_cold() {
        let jobs = vec![spec("a", Some(("s", 0)), 4), spec("b", Some(("s", 1)), 4)];
        let mut cache = SessionCache::new(0);
        let (p, _) = build_plan(&jobs, 1, &mut cache);
        assert_eq!(p.warm, vec![false, false]);
        assert_eq!(cache.stats.hits + cache.stats.misses, 0);
    }

    #[test]
    fn persisted_entry_warms_next_drain() {
        let mut cache = SessionCache::new(1 << 20);
        let d1 = vec![spec("a", Some(("s", 0)), 4)];
        let (_, _) = build_plan(&d1, 1, &mut cache);
        let d2 = vec![spec("b", Some(("s", 1)), 4)];
        let (p2, _) = build_plan(&d2, 1, &mut cache);
        assert_eq!(p2.warm, vec![true]);
        assert_eq!(p2.dep, vec![None], "payload comes from the store");
    }
}
