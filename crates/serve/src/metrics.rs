//! Scheduler-level counters and their machine-readable export.
//!
//! Every figure here is derived from deterministic inputs (plan walk,
//! virtual-time simulation, per-job solver stats), so two runs of the same
//! job set produce byte-identical metrics JSON. The JSON is hand-rolled
//! (integer-only), matching the repo's no-serde convention.

use crate::cache::CacheStats;

/// Counters accumulated across a scheduler's lifetime (all drains).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    // Admission.
    pub submitted: u64,
    pub rejected: u64,
    pub cancelled: u64,
    // Outcomes.
    pub completed: u64,
    pub failed: u64,
    pub deadline_missed: u64,
    pub unconverged: u64,
    // Warm-start economics.
    pub warm_hits: u64,
    pub warm_misses: u64,
    pub cold_starts: u64,
    pub warm_fallbacks: u64,
    /// Jobs that lost a rank mid-solve and completed on the shrunk pool
    /// via checkpoint resume (the rung below `warm_fallbacks` on the
    /// degradation ladder).
    pub rank_crash_retries: u64,
    pub lanczos_skipped: u64,
    pub cache_evictions: u64,
    pub cache_insert_rejects: u64,
    pub cache_high_water_bytes: u64,
    // Solver work.
    pub total_matvecs: u64,
    /// MatVecs avoided by warm starts, measured against each session's own
    /// cold first step (a deterministic in-band baseline).
    pub matvecs_saved: u64,
    // Autotuning economics: fresh plan-DB entries measured vs. solves that
    // reused one (a session tunes on its first cold solve only).
    pub plans_tuned: u64,
    pub plan_db_hits: u64,
    // Virtual-time schedule.
    pub makespan_ticks: u64,
    pub total_wait_ticks: u64,
    pub max_queue_depth: u64,
    pub drains: u64,
}

impl ServeMetrics {
    /// Fraction of session-step lookups served from the cache.
    pub fn warm_hit_rate(&self) -> f64 {
        let lookups = self.warm_hits + self.warm_misses;
        if lookups == 0 {
            0.0
        } else {
            self.warm_hits as f64 / lookups as f64
        }
    }

    pub(crate) fn absorb_cache(&mut self, before: CacheStats, after: CacheStats) {
        self.warm_hits += after.hits - before.hits;
        self.warm_misses += after.misses - before.misses;
        self.cache_evictions += after.evictions - before.evictions;
        self.cache_insert_rejects += after.insert_rejects - before.insert_rejects;
        self.cache_high_water_bytes = self.cache_high_water_bytes.max(after.high_water_bytes);
    }

    /// Machine-readable export (stable key order, integers only except the
    /// derived hit rate, which is rendered with fixed precision).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut field = |k: &str, v: u64| {
            s.push_str(&format!("  \"{k}\": {v},\n"));
        };
        field("submitted", self.submitted);
        field("rejected", self.rejected);
        field("cancelled", self.cancelled);
        field("completed", self.completed);
        field("failed", self.failed);
        field("deadline_missed", self.deadline_missed);
        field("unconverged", self.unconverged);
        field("warm_hits", self.warm_hits);
        field("warm_misses", self.warm_misses);
        field("cold_starts", self.cold_starts);
        field("warm_fallbacks", self.warm_fallbacks);
        field("rank_crash_retries", self.rank_crash_retries);
        field("lanczos_skipped", self.lanczos_skipped);
        field("cache_evictions", self.cache_evictions);
        field("cache_insert_rejects", self.cache_insert_rejects);
        field("cache_high_water_bytes", self.cache_high_water_bytes);
        field("total_matvecs", self.total_matvecs);
        field("matvecs_saved", self.matvecs_saved);
        field("plans_tuned", self.plans_tuned);
        field("plan_db_hits", self.plan_db_hits);
        field("makespan_ticks", self.makespan_ticks);
        field("total_wait_ticks", self.total_wait_ticks);
        field("max_queue_depth", self.max_queue_depth);
        field("drains", self.drains);
        s.push_str(&format!(
            "  \"warm_hit_rate\": {:.4}\n}}\n",
            self.warm_hit_rate()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(ServeMetrics::default().warm_hit_rate(), 0.0);
    }

    #[test]
    fn json_is_stable_and_parseable_shape() {
        let m = ServeMetrics {
            warm_hits: 3,
            warm_misses: 1,
            ..ServeMetrics::default()
        };
        let j = m.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"warm_hits\": 3,"));
        assert!(j.contains("\"warm_hit_rate\": 0.7500"));
        assert_eq!(j, m.to_json(), "export must be byte-stable");
    }
}
